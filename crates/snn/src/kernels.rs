//! Runtime-dispatched SIMD kernels for the three hot inner loops of the
//! inference engine: member-row drive accumulation (both the `clamp_reads`
//! effective-weight transform and the finite-filter path), the branch-free
//! LIF lane update, and the lateral-inhibition sweep.
//!
//! # Dispatch
//!
//! A [`Kernel`] is a resolved implementation choice:
//!
//! | kernel             | ISA                | selected by                         |
//! |--------------------|--------------------|-------------------------------------|
//! | [`Kernel::Scalar`] | portable           | `SPARKXD_KERNEL=scalar`, or `auto` on hosts without AVX2 |
//! | [`Kernel::Avx2`]   | x86_64 AVX2        | `SPARKXD_KERNEL=avx2`, or `auto` on hosts with AVX2 |
//!
//! Selection starts from a [`KernelChoice`] (`auto` unless the
//! `SPARKXD_KERNEL` environment variable or a builder such as
//! [`BatchEvaluator::with_kernel`](crate::engine::BatchEvaluator::with_kernel)
//! says otherwise) and resolves through [`KernelChoice::resolve`], which
//! consults [`is_x86_feature_detected!`] at runtime — `avx2` on a host
//! without AVX2 warns once on stderr and falls back to the portable
//! kernel, so a pinned configuration can never execute an unsupported
//! instruction. Every dispatch method double-checks the feature before
//! entering a `#[target_feature]` function, so even a hand-constructed
//! [`Kernel::Avx2`] is safe everywhere.
//!
//! # Bit-identity argument
//!
//! The AVX2 kernels are **bit-identical to the scalar reference by
//! construction**, not by accident of optimisation:
//!
//! * every lane computes the exact scalar IEEE-754 operation sequence —
//!   lanewise `add/sub/mul/div` in the same order as the scalar
//!   expression, **no FMA** (which would skip an intermediate rounding)
//!   and **no horizontal reductions** (which would reassociate sums);
//! * conditional behaviour uses ordered quiet compares plus blends with
//!   the same truth table as the scalar branches (`_CMP_GE_OQ` ↔ `>=`,
//!   `_CMP_GT_OQ` ↔ `>`, both false on NaN exactly like Rust);
//! * the finite filter *skips* non-finite weights with a blend (keeping
//!   the accumulator's bits) instead of adding a masked zero, matching
//!   the scalar `if w.is_finite()` exactly even for `-0.0` accumulators;
//! * remainder lanes (`n % 8 != 0`) run the portable kernel itself.
//!
//! The one documented precondition is the inhibition sweep's
//! [`f32::max`] against the floor: `_mm256_max_ps(x, floor)` matches
//! `x.max(floor)` for every `x` (including NaN) provided `floor` itself
//! is a non-NaN value that is not a signed zero — always true for the
//! model's floor of [`LifConfig::inhibition_floor`] (strictly below
//! `v_reset`). `tests/kernel_invariance.rs` proves the equivalence
//! empirically across NaN/Inf/negative/denormal inputs and every tail
//! alignment.

use crate::neuron::LifConfig;
use crate::synapse::StoredWeights;

/// A kernel *request*: what the caller asked for, before runtime feature
/// detection. Parsed from `SPARKXD_KERNEL` (`auto` | `scalar` | `avx2`)
/// or pinned via builder APIs; resolve to an executable [`Kernel`] with
/// [`KernelChoice::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Pick the widest kernel the host supports (the default).
    #[default]
    Auto,
    /// Force the portable scalar kernel.
    Scalar,
    /// Request the AVX2 kernel; falls back to scalar (with a once-per-
    /// process stderr warning) when the host lacks AVX2.
    Avx2,
}

impl KernelChoice {
    /// Parses a `SPARKXD_KERNEL` value (case-insensitive, surrounding
    /// whitespace ignored). Returns `None` for anything that is not
    /// `auto`, `scalar` or `avx2` — the caller decides how to warn.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Self::Auto),
            "scalar" => Some(Self::Scalar),
            "avx2" => Some(Self::Avx2),
            _ => None,
        }
    }

    /// Resolves the request against the host's actual features. `Auto`
    /// picks AVX2 when available; an explicit `Avx2` request on a host
    /// without it warns once on stderr and degrades to [`Kernel::Scalar`]
    /// rather than executing unsupported instructions.
    pub fn resolve(self) -> Kernel {
        match self {
            Self::Scalar => Kernel::Scalar,
            Self::Auto => {
                if avx2_supported() {
                    Kernel::Avx2
                } else {
                    Kernel::Scalar
                }
            }
            Self::Avx2 => {
                if avx2_supported() {
                    Kernel::Avx2
                } else {
                    if crate::engine::warn_once("SPARKXD_KERNEL:avx2-unavailable") {
                        eprintln!(
                            "sparkxd: SPARKXD_KERNEL=avx2 requested but this host \
                             has no AVX2; using the portable scalar kernel"
                        );
                    }
                    Kernel::Scalar
                }
            }
        }
    }

    /// The canonical spelling (`auto` / `scalar` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
        }
    }
}

/// `true` when the host can execute the AVX2 kernels (checked at runtime;
/// always `false` off x86_64).
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// A resolved, executable kernel implementation. Obtain one from
/// [`KernelChoice::resolve`] (or [`engine::kernel`](crate::engine::kernel)
/// for the environment default); every method is safe on every host —
/// [`Kernel::Avx2`] re-verifies the CPU feature before entering
/// `#[target_feature]` code and otherwise runs the portable kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Portable unrolled-scalar lanes (the reference implementation).
    #[default]
    Scalar,
    /// Hand-written x86_64 AVX2 lanes, bit-identical to `Scalar`.
    Avx2,
}

impl Kernel {
    /// The kernels this host can actually execute, widest last. Useful
    /// for per-kernel benchmark rows and invariance sweeps.
    pub fn available() -> &'static [Kernel] {
        if avx2_supported() {
            &[Kernel::Scalar, Kernel::Avx2]
        } else {
            &[Kernel::Scalar]
        }
    }

    /// The kernel's label (`scalar` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
        }
    }

    #[inline]
    #[cfg(target_arch = "x86_64")]
    fn run_avx2(self) -> bool {
        self == Kernel::Avx2 && avx2_supported()
    }

    /// The fused multi-member row pass of the batched drive sweep: adds
    /// `row_tile` (one effective row's tile slice) into the drive slice of
    /// every batch member in `members`, i.e.
    /// `drive[b * stride + offset ..][.. row_tile.len()] += row_tile` for
    /// each `b`. The row tile is loaded once and applied to all members
    /// while hot, instead of being re-streamed per member.
    ///
    /// # Panics
    ///
    /// Panics if any member's drive slice falls outside `drive`.
    pub fn accumulate_members(
        self,
        drive: &mut [f32],
        stride: usize,
        offset: usize,
        members: &[usize],
        row_tile: &[f32],
    ) {
        check_member_bounds(drive.len(), stride, offset, members, row_tile.len());
        #[cfg(target_arch = "x86_64")]
        if self.run_avx2() {
            // SAFETY: AVX2 presence verified at runtime just above;
            // member bounds checked against `drive` just above.
            unsafe { avx2::accumulate_members(drive, stride, offset, members, row_tile) };
            return;
        }
        scalar::accumulate_members(drive, stride, offset, members, row_tile);
    }

    /// The scalar reference path's `clamp_reads` accumulate:
    /// `drive[j] += StoredWeights::effective(row[j], w_max)` per lane
    /// (non-finite → 0, else clamped into `[0, w_max]`).
    pub fn accumulate_effective(self, drive: &mut [f32], row: &[f32], w_max: f32) {
        #[cfg(target_arch = "x86_64")]
        if self.run_avx2() {
            // SAFETY: AVX2 presence verified at runtime just above.
            unsafe { avx2::accumulate_effective(drive, row, w_max) };
            return;
        }
        scalar::accumulate_effective(drive, row, w_max);
    }

    /// The scalar reference path's unclamped accumulate: adds `row[j]`
    /// into `drive[j]` only where the weight is finite, leaving the
    /// accumulator's bits untouched (not even `+ 0.0`) elsewhere.
    pub fn accumulate_finite(self, drive: &mut [f32], row: &[f32]) {
        #[cfg(target_arch = "x86_64")]
        if self.run_avx2() {
            // SAFETY: AVX2 presence verified at runtime just above.
            unsafe { avx2::accumulate_finite(drive, row) };
            return;
        }
        scalar::accumulate_finite(drive, row);
    }

    /// Advances one sample's SoA membrane lanes by one timestep: decays
    /// the adaptive thresholds, clamps refractory lanes, leaks + integrates
    /// the drive, and records threshold crossings in `lanes.crossed`.
    /// Returns whether any lane crossed, so quiet timesteps skip the
    /// firing/inhibition passes entirely.
    ///
    /// The arithmetic mirrors [`LifState::integrate`](crate::neuron::LifState::integrate)
    /// operation for operation (including evaluation order, so every
    /// intermediate rounds identically) — results are bit-identical to the
    /// scalar path. The invariance test battery guards the equivalence.
    ///
    /// # Panics
    ///
    /// Panics if the lane slabs have mismatched lengths.
    pub fn integrate_lanes(self, lif: &LifConfig, dt_ms: f32, lanes: LifLanes<'_>) -> bool {
        let LifLanes {
            v,
            theta,
            refractory,
            drive,
            crossed,
        } = lanes;
        let n = v.len();
        assert!(
            theta.len() == n && refractory.len() == n && drive.len() == n && crossed.len() == n,
            "membrane lane slabs must have matching lengths"
        );
        #[cfg(target_arch = "x86_64")]
        if self.run_avx2() {
            // SAFETY: AVX2 presence verified at runtime just above;
            // slab lengths verified equal just above.
            return unsafe {
                avx2::integrate_lanes(lif, dt_ms, v, theta, refractory, drive, crossed)
            };
        }
        scalar::integrate_lanes(lif, dt_ms, v, theta, refractory, drive, crossed)
    }

    /// The lateral-inhibition sweep over one contiguous run of non-firing
    /// lanes: `v[j] = (v[j] - strength).max(floor)` per lane. Callers walk
    /// the (sorted) fired list and hand over the gaps between winners, so
    /// no per-lane mask is needed.
    pub fn inhibit_lanes(self, v: &mut [f32], strength: f32, floor: f32) {
        debug_assert!(floor.is_finite(), "inhibition floor must be finite");
        #[cfg(target_arch = "x86_64")]
        if self.run_avx2() {
            // SAFETY: AVX2 presence verified at runtime just above.
            unsafe { avx2::inhibit_lanes(v, strength, floor) };
            return;
        }
        scalar::inhibit_lanes(v, strength, floor);
    }
}

/// One sample's SoA membrane lanes, borrowed for [`Kernel::integrate_lanes`].
/// All five slices must have the same length.
#[derive(Debug)]
pub struct LifLanes<'a> {
    /// Membrane potentials.
    pub v: &'a mut [f32],
    /// Adaptive-threshold working copies.
    pub theta: &'a mut [f32],
    /// Remaining refractory times.
    pub refractory: &'a mut [f32],
    /// This timestep's accumulated synaptic drive.
    pub drive: &'a [f32],
    /// Output: which lanes reached threshold this timestep.
    pub crossed: &'a mut [bool],
}

/// Hints the hardware to pull `data` towards L1 ahead of use. The batched
/// tile sweep knows the *next* merged row's tile slice while the current
/// one is being accumulated, and consecutive merged rows live at
/// unrelated plane addresses the hardware stride prefetcher cannot
/// predict — so the sweep issues this across the upcoming slice to hide
/// the inter-row latency bubble. Under the intra-chunk parallel sweep
/// (`SPARKXD_INTRA`) the hints are per-worker: each range-job prefetches
/// only its own tile slice of the next row, so a worker never pollutes a
/// sibling core's L1 with lanes it will not stream. Purely a scheduling
/// hint: results are unaffected on every target, and the function is a
/// no-op off x86_64.
#[inline]
pub fn prefetch_lanes(data: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // One hint per 64-byte line (16 f32 lanes).
        let mut i = 0;
        while i < data.len() {
            // Safety: `data.as_ptr().add(i)` stays inside the slice;
            // prefetch has no architectural effect beyond the cache.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(i).cast()) };
            i += 16;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = data;
    }
}

/// Validates that every member's drive slice
/// `[b * stride + offset, b * stride + offset + len)` lies inside a drive
/// buffer of `drive_len` lanes (overflow-checked), so the kernels can use
/// unchecked lane addressing afterwards.
fn check_member_bounds(
    drive_len: usize,
    stride: usize,
    offset: usize,
    members: &[usize],
    len: usize,
) {
    for &b in members {
        let start = b
            .checked_mul(stride)
            .and_then(|s| s.checked_add(offset))
            .expect("member drive offset overflows");
        assert!(
            start.checked_add(len).is_some_and(|end| end <= drive_len),
            "member {b} drive slice [{start}, {start}+{len}) out of bounds (drive has {drive_len})"
        );
    }
}

/// The portable kernel: straight-line lanewise loops, explicitly
/// structured in 8-lane groups (plus a short tail) so the compiler can
/// keep them branch-free and vectorise at the baseline ISA. These loops
/// *are* the reference semantics; the AVX2 module reproduces them lane
/// for lane.
mod scalar {
    use super::{LifConfig, StoredWeights};

    pub(super) fn accumulate_members(
        drive: &mut [f32],
        stride: usize,
        offset: usize,
        members: &[usize],
        row_tile: &[f32],
    ) {
        for &b in members {
            let start = b * stride + offset;
            let dst = &mut drive[start..start + row_tile.len()];
            for (d, w) in dst.chunks_exact_mut(8).zip(row_tile.chunks_exact(8)) {
                for (dk, &wk) in d.iter_mut().zip(w) {
                    *dk += wk;
                }
            }
            let tail = row_tile.len() - row_tile.len() % 8;
            for (d, &w) in dst[tail..].iter_mut().zip(&row_tile[tail..]) {
                *d += w;
            }
        }
    }

    pub(super) fn accumulate_effective(drive: &mut [f32], row: &[f32], w_max: f32) {
        for (d, w) in drive.chunks_exact_mut(8).zip(row.chunks_exact(8)) {
            for (dk, &wk) in d.iter_mut().zip(w) {
                *dk += StoredWeights::effective(wk, w_max);
            }
        }
        let n = drive.len().min(row.len());
        let tail = n - n % 8;
        for (d, &w) in drive[tail..].iter_mut().zip(&row[tail..]) {
            *d += StoredWeights::effective(w, w_max);
        }
    }

    pub(super) fn accumulate_finite(drive: &mut [f32], row: &[f32]) {
        for (d, w) in drive.chunks_exact_mut(8).zip(row.chunks_exact(8)) {
            for (dk, &wk) in d.iter_mut().zip(w) {
                if wk.is_finite() {
                    *dk += wk;
                }
            }
        }
        let n = drive.len().min(row.len());
        let tail = n - n % 8;
        for (d, &w) in drive[tail..].iter_mut().zip(&row[tail..]) {
            if w.is_finite() {
                *d += w;
            }
        }
    }

    pub(super) fn integrate_lanes(
        lif: &LifConfig,
        dt_ms: f32,
        v: &mut [f32],
        theta: &mut [f32],
        refractory: &mut [f32],
        drive: &[f32],
        crossed: &mut [bool],
    ) -> bool {
        let mut any_crossed = false;
        let lanes = v
            .iter_mut()
            .zip(theta.iter_mut())
            .zip(refractory.iter_mut())
            .zip(drive.iter())
            .zip(crossed.iter_mut());
        for ((((vj, tj), rj), &dj), cj) in lanes {
            // Threshold adaptation decays regardless of refractory state.
            let th = *tj - *tj * dt_ms / lif.tau_theta;
            *tj = th;
            let in_refractory = *rj > 0.0;
            // Computed for every lane, discarded on refractory ones
            // (selects keep the loop branch-free).
            let leaked = *vj + (lif.v_rest - *vj) * dt_ms / lif.tau_membrane;
            let integrated = leaked + dj;
            let cross = !in_refractory && integrated >= lif.v_thresh + th;
            *vj = if in_refractory {
                lif.v_reset
            } else {
                integrated
            };
            *rj = if in_refractory { *rj - dt_ms } else { *rj };
            *cj = cross;
            any_crossed |= cross;
        }
        any_crossed
    }

    pub(super) fn inhibit_lanes(v: &mut [f32], strength: f32, floor: f32) {
        for lanes in v.chunks_exact_mut(8) {
            for vj in lanes {
                *vj = (*vj - strength).max(floor);
            }
        }
        let tail = v.len() - v.len() % 8;
        for vj in &mut v[tail..] {
            *vj = (*vj - strength).max(floor);
        }
    }
}

/// The AVX2 kernel: 8-lane `std::arch` intrinsics computing the exact
/// scalar IEEE sequence per lane (lanewise `add/sub/mul/div`, ordered
/// quiet compares + blends, no FMA, no horizontal reductions), with the
/// `n % 8` tail delegated to the portable kernel. See the module docs for
/// the bit-identity argument.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{scalar, LifConfig};
    use std::arch::x86_64::{
        __m128i, __m256, _mm256_add_ps, _mm256_and_ps, _mm256_and_si256, _mm256_andnot_ps,
        _mm256_blendv_ps, _mm256_castps_si256, _mm256_castsi256_ps, _mm256_castsi256_si128,
        _mm256_cmp_ps, _mm256_div_ps, _mm256_extracti128_si256, _mm256_loadu_ps, _mm256_max_ps,
        _mm256_movemask_ps, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps, _mm256_sub_ps, _mm_packs_epi16, _mm_packs_epi32, _mm_storel_epi64,
        _CMP_GE_OQ, _CMP_GT_OQ, _CMP_LT_OQ,
    };

    /// All-ones where the lane holds a finite value: `|w| < +inf` as an
    /// ordered quiet compare, which is false for NaN and ±inf — exactly
    /// `f32::is_finite`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn finite_mask(w: __m256) -> __m256 {
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let inf = _mm256_set1_ps(f32::INFINITY);
        _mm256_cmp_ps::<_CMP_LT_OQ>(_mm256_and_ps(w, abs_mask), inf)
    }

    /// # Safety
    ///
    /// AVX2 must be available, and every member slice
    /// `[b * stride + offset, .. + row_tile.len())` must lie inside
    /// `drive` (the dispatcher checks both).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_members(
        drive: &mut [f32],
        stride: usize,
        offset: usize,
        members: &[usize],
        row_tile: &[f32],
    ) {
        let len = row_tile.len();
        let base = drive.as_mut_ptr();
        let row = row_tile.as_ptr();
        // Member-outer: the whole row tile (≤ 2 KiB) stays L1-hot across
        // every member's read-modify-write, and each member's pass is a
        // straight-line unrolled stream with the base pointer hoisted.
        // The merge emits mostly 1–2 members per row, so a chunk-outer
        // loop that re-walks the member list per 8 lanes pays more in
        // loop overhead than it saves in row reloads. Per drive lane the
        // adds happen in the same (single) per-row order as the scalar
        // kernel, so bit-identity holds.
        for &b in members {
            let p = base.add(b * stride + offset);
            let mut c = 0;
            while c + 16 <= len {
                let w0 = _mm256_loadu_ps(row.add(c));
                let w1 = _mm256_loadu_ps(row.add(c + 8));
                _mm256_storeu_ps(p.add(c), _mm256_add_ps(_mm256_loadu_ps(p.add(c)), w0));
                let p1 = p.add(c + 8);
                _mm256_storeu_ps(p1, _mm256_add_ps(_mm256_loadu_ps(p1), w1));
                c += 16;
            }
            while c + 8 <= len {
                let w = _mm256_loadu_ps(row.add(c));
                _mm256_storeu_ps(p.add(c), _mm256_add_ps(_mm256_loadu_ps(p.add(c)), w));
                c += 8;
            }
            while c < len {
                *p.add(c) += *row.add(c);
                c += 1;
            }
        }
    }

    /// # Safety
    ///
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_effective(drive: &mut [f32], row: &[f32], w_max: f32) {
        let n = drive.len().min(row.len());
        let d = drive.as_mut_ptr();
        let r = row.as_ptr();
        let zero = _mm256_setzero_ps();
        let wmax = _mm256_set1_ps(w_max);
        let mut c = 0;
        while c + 8 <= n {
            let w = _mm256_loadu_ps(r.add(c));
            // `StoredWeights::effective` lane for lane: the clamp is the
            // same two ordered branches (`< 0` wins over `> w_max`, both
            // false on NaN), then non-finite lanes collapse to +0.0.
            let below = _mm256_cmp_ps::<_CMP_LT_OQ>(w, zero);
            let above = _mm256_cmp_ps::<_CMP_GT_OQ>(w, wmax);
            let clamped = _mm256_blendv_ps(_mm256_blendv_ps(w, wmax, above), zero, below);
            let e = _mm256_and_ps(clamped, finite_mask(w));
            let p = d.add(c);
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), e));
            c += 8;
        }
        scalar::accumulate_effective(&mut drive[c..], &row[c..], w_max);
    }

    /// # Safety
    ///
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_finite(drive: &mut [f32], row: &[f32]) {
        let n = drive.len().min(row.len());
        let d = drive.as_mut_ptr();
        let r = row.as_ptr();
        let mut c = 0;
        while c + 8 <= n {
            let w = _mm256_loadu_ps(r.add(c));
            let p = d.add(c);
            let acc = _mm256_loadu_ps(p);
            // Skip semantics, not add-zero: non-finite lanes keep the
            // accumulator's exact bits.
            let sum = _mm256_add_ps(acc, w);
            _mm256_storeu_ps(p, _mm256_blendv_ps(acc, sum, finite_mask(w)));
            c += 8;
        }
        scalar::accumulate_finite(&mut drive[c..], &row[c..]);
    }

    /// # Safety
    ///
    /// AVX2 must be available; all slabs must have equal length (the
    /// dispatcher checks).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn integrate_lanes(
        lif: &LifConfig,
        dt_ms: f32,
        v: &mut [f32],
        theta: &mut [f32],
        refractory: &mut [f32],
        drive: &[f32],
        crossed: &mut [bool],
    ) -> bool {
        let n = v.len();
        let dt = _mm256_set1_ps(dt_ms);
        let tau_theta = _mm256_set1_ps(lif.tau_theta);
        let tau_membrane = _mm256_set1_ps(lif.tau_membrane);
        let v_rest = _mm256_set1_ps(lif.v_rest);
        let v_reset = _mm256_set1_ps(lif.v_reset);
        let v_thresh = _mm256_set1_ps(lif.v_thresh);
        let zero = _mm256_setzero_ps();
        let vp = v.as_mut_ptr();
        let tp = theta.as_mut_ptr();
        let rp = refractory.as_mut_ptr();
        let dp = drive.as_ptr();
        let cp = crossed.as_mut_ptr();
        let mut any = false;
        let mut c = 0;
        while c + 8 <= n {
            // th = t - t * dt / tau_theta — mul then div, scalar order.
            let t = _mm256_loadu_ps(tp.add(c));
            let th = _mm256_sub_ps(t, _mm256_div_ps(_mm256_mul_ps(t, dt), tau_theta));
            _mm256_storeu_ps(tp.add(c), th);
            let r = _mm256_loadu_ps(rp.add(c));
            let in_refractory = _mm256_cmp_ps::<_CMP_GT_OQ>(r, zero);
            // leaked = v + (v_rest - v) * dt / tau_membrane
            let vv = _mm256_loadu_ps(vp.add(c));
            let leaked = _mm256_add_ps(
                vv,
                _mm256_div_ps(_mm256_mul_ps(_mm256_sub_ps(v_rest, vv), dt), tau_membrane),
            );
            let integrated = _mm256_add_ps(leaked, _mm256_loadu_ps(dp.add(c)));
            // cross = !in_refractory && integrated >= v_thresh + th
            // (`>=` as an ordered quiet compare: false on NaN, like Rust).
            let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(integrated, _mm256_add_ps(v_thresh, th));
            let cross = _mm256_andnot_ps(in_refractory, ge);
            _mm256_storeu_ps(
                vp.add(c),
                _mm256_blendv_ps(integrated, v_reset, in_refractory),
            );
            _mm256_storeu_ps(
                rp.add(c),
                _mm256_blendv_ps(r, _mm256_sub_ps(r, dt), in_refractory),
            );
            any |= _mm256_movemask_ps(cross) != 0;
            // Write the 8 `bool` lanes with one 8-byte store: the 0/-1
            // i32 lane masks become 0/1 i32s, saturating-pack to i16
            // then i8 (0/1 survive both packs, lane order preserved) —
            // eight scalar bit-test stores here cost more than the whole
            // arithmetic body.
            let ones = _mm256_and_si256(_mm256_castps_si256(cross), _mm256_set1_epi32(1));
            let lo = _mm256_castsi256_si128(ones);
            let hi = _mm256_extracti128_si256::<1>(ones);
            let bytes = _mm_packs_epi16(_mm_packs_epi32(lo, hi), _mm_packs_epi32(lo, hi));
            _mm_storel_epi64(cp.add(c).cast::<__m128i>(), bytes);
            c += 8;
        }
        any |= scalar::integrate_lanes(
            lif,
            dt_ms,
            &mut v[c..],
            &mut theta[c..],
            &mut refractory[c..],
            &drive[c..],
            &mut crossed[c..],
        );
        any
    }

    /// # Safety
    ///
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn inhibit_lanes(v: &mut [f32], strength: f32, floor: f32) {
        let n = v.len();
        let p = v.as_mut_ptr();
        let s = _mm256_set1_ps(strength);
        let f = _mm256_set1_ps(floor);
        let mut c = 0;
        while c + 8 <= n {
            // (v - strength).max(floor): `_mm256_max_ps` returns its
            // second operand when the first is NaN — exactly `f32::max`
            // with a non-NaN floor.
            let x = _mm256_sub_ps(_mm256_loadu_ps(p.add(c)), s);
            _mm256_storeu_ps(p.add(c), _mm256_max_ps(x, f));
            c += 8;
        }
        scalar::inhibit_lanes(&mut v[c..], strength, floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_parses_canonical_spellings() {
        assert_eq!(KernelChoice::parse("auto"), Some(KernelChoice::Auto));
        assert_eq!(KernelChoice::parse("scalar"), Some(KernelChoice::Scalar));
        assert_eq!(KernelChoice::parse("avx2"), Some(KernelChoice::Avx2));
        assert_eq!(KernelChoice::parse("  AVX2 "), Some(KernelChoice::Avx2));
        assert_eq!(KernelChoice::parse("Scalar"), Some(KernelChoice::Scalar));
    }

    #[test]
    fn choice_rejects_unknown_spellings() {
        for raw in ["", "sse", "avx512", "scalar,avx2", "1", "wide"] {
            assert_eq!(KernelChoice::parse(raw), None, "raw={raw:?}");
        }
    }

    #[test]
    fn resolve_never_yields_unsupported_kernels() {
        assert_eq!(KernelChoice::Scalar.resolve(), Kernel::Scalar);
        let expect_wide = if avx2_supported() {
            Kernel::Avx2
        } else {
            Kernel::Scalar
        };
        assert_eq!(KernelChoice::Auto.resolve(), expect_wide);
        assert_eq!(KernelChoice::Avx2.resolve(), expect_wide);
    }

    #[test]
    fn available_always_starts_with_scalar() {
        let kernels = Kernel::available();
        assert_eq!(kernels.first(), Some(&Kernel::Scalar));
        assert_eq!(kernels.contains(&Kernel::Avx2), avx2_supported());
    }

    #[test]
    fn names_round_trip() {
        for choice in [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Avx2] {
            assert_eq!(KernelChoice::parse(choice.name()), Some(choice));
        }
        assert_eq!(Kernel::Scalar.name(), "scalar");
        assert_eq!(Kernel::Avx2.name(), "avx2");
    }

    /// A small battery of adversarial lane values: specials, denormals,
    /// signed zeros and ordinary magnitudes.
    fn nasty_values() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -2.5,
            0.75,
            1.5e-41,  // denormal
            -7.0e-42, // negative denormal
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            3.4e38,
            -3.4e38,
            9.0,
            -65.0,
        ]
    }

    /// Cyclic fill of `len` lanes from the nasty battery, phase-shifted by
    /// `phase` so accumulators and weights disagree lane by lane.
    fn nasty_lanes(len: usize, phase: usize) -> Vec<f32> {
        let pool = nasty_values();
        (0..len).map(|i| pool[(i + phase) % pool.len()]).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn kernels_agree_bitwise_on_every_tail_alignment() {
        // Kernel-level equivalence across all `n % 8` tails, including
        // lengths shorter than one vector. The full-pipeline sweep lives
        // in tests/kernel_invariance.rs.
        for kernel in Kernel::available() {
            for len in 0..=19usize {
                let drive0 = nasty_lanes(len, 3);
                let row = nasty_lanes(len, 7);

                let mut expect = drive0.clone();
                scalar::accumulate_effective(&mut expect, &row, 1.0);
                let mut got = drive0.clone();
                kernel.accumulate_effective(&mut got, &row, 1.0);
                assert_eq!(bits(&expect), bits(&got), "effective {kernel:?} len={len}");

                let mut expect = drive0.clone();
                scalar::accumulate_finite(&mut expect, &row);
                let mut got = drive0.clone();
                kernel.accumulate_finite(&mut got, &row);
                assert_eq!(bits(&expect), bits(&got), "finite {kernel:?} len={len}");

                let mut expect = drive0.clone();
                scalar::inhibit_lanes(&mut expect, 12.5, -85.0);
                let mut got = drive0;
                kernel.inhibit_lanes(&mut got, 12.5, -85.0);
                assert_eq!(bits(&expect), bits(&got), "inhibit {kernel:?} len={len}");
            }
        }
    }

    #[test]
    fn integrate_lanes_agrees_bitwise_with_scalar() {
        let lif = LifConfig::default();
        for kernel in Kernel::available() {
            for len in 0..=19usize {
                // Finite membrane state (as in real runs), drive may be
                // anything the corrupted unclamped path can produce.
                let v0: Vec<f32> = (0..len).map(|i| -66.0 + i as f32 * 1.75).collect();
                let theta0: Vec<f32> = (0..len).map(|i| i as f32 * 0.05).collect();
                let refr0: Vec<f32> = (0..len)
                    .map(|i| if i % 3 == 0 { 4.0 } else { 0.0 })
                    .collect();
                let drive = nasty_lanes(len, 5);

                let (mut v_a, mut t_a, mut r_a) = (v0.clone(), theta0.clone(), refr0.clone());
                let mut c_a = vec![false; len];
                let any_a = scalar::integrate_lanes(
                    &lif, 1.0, &mut v_a, &mut t_a, &mut r_a, &drive, &mut c_a,
                );

                let (mut v_b, mut t_b, mut r_b) = (v0, theta0, refr0);
                let mut c_b = vec![false; len];
                let any_b = kernel.integrate_lanes(
                    &lif,
                    1.0,
                    LifLanes {
                        v: &mut v_b,
                        theta: &mut t_b,
                        refractory: &mut r_b,
                        drive: &drive,
                        crossed: &mut c_b,
                    },
                );

                assert_eq!(any_a, any_b, "{kernel:?} len={len}");
                assert_eq!(c_a, c_b, "{kernel:?} len={len}");
                assert_eq!(bits(&v_a), bits(&v_b), "{kernel:?} len={len}");
                assert_eq!(bits(&t_a), bits(&t_b), "{kernel:?} len={len}");
                assert_eq!(bits(&r_a), bits(&r_b), "{kernel:?} len={len}");
            }
        }
    }

    #[test]
    fn accumulate_members_matches_per_member_streaming() {
        // The fused pass must equal the pre-fusion per-member loop for
        // every kernel, tail alignment and member multiplicity.
        let stride = 23;
        for kernel in Kernel::available() {
            for (offset, width) in [(0usize, 23usize), (5, 9), (16, 7), (20, 3), (0, 8)] {
                let members = [0usize, 2, 3];
                let row_tile = nasty_lanes(width, 1);
                let mut expect = nasty_lanes(4 * stride, 2);
                let mut got = expect.clone();
                for &b in &members {
                    let dst = &mut expect[b * stride + offset..b * stride + offset + width];
                    for (d, &w) in dst.iter_mut().zip(&row_tile) {
                        *d += w;
                    }
                }
                kernel.accumulate_members(&mut got, stride, offset, &members, &row_tile);
                assert_eq!(
                    bits(&expect),
                    bits(&got),
                    "{kernel:?} offset={offset} width={width}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn accumulate_members_rejects_out_of_bounds_member() {
        let mut drive = vec![0.0f32; 16];
        Kernel::Scalar.accumulate_members(&mut drive, 8, 4, &[1], &[1.0; 8]);
    }

    #[test]
    fn effective_transform_zeroes_non_finite_and_clamps() {
        for kernel in Kernel::available() {
            let row = [
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                -3.0,
                9.0,
                0.5,
                -0.0,
                1.0,
            ];
            let mut drive = [1.0f32; 8];
            kernel.accumulate_effective(&mut drive, &row, 1.0);
            assert_eq!(
                drive,
                [1.0, 1.0, 1.0, 1.0, 2.0, 1.5, 1.0, 2.0],
                "{kernel:?}"
            );
        }
    }

    #[test]
    fn finite_filter_skips_without_touching_accumulator_bits() {
        for kernel in Kernel::available() {
            let row = [f32::NAN, f32::INFINITY, 2.0, f32::NEG_INFINITY];
            let mut drive = [-0.0f32, 7.0, 1.0, f32::NAN];
            kernel.accumulate_finite(&mut drive, &row);
            assert_eq!(drive[0].to_bits(), (-0.0f32).to_bits(), "{kernel:?}");
            assert_eq!(drive[1], 7.0, "{kernel:?}");
            assert_eq!(drive[2], 3.0, "{kernel:?}");
            assert!(drive[3].is_nan(), "{kernel:?}");
        }
    }

    #[test]
    fn inhibit_floors_nan_membranes_like_f32_max() {
        for kernel in Kernel::available() {
            let mut v = [f32::NAN, -60.0, -200.0, f32::INFINITY];
            kernel.inhibit_lanes(&mut v, 10.0, -85.0);
            assert_eq!(v[0], -85.0, "{kernel:?}: NaN membrane floors");
            assert_eq!(v[1], -70.0, "{kernel:?}");
            assert_eq!(v[2], -85.0, "{kernel:?}");
            assert_eq!(v[3], f32::INFINITY, "{kernel:?}");
        }
    }
}
