//! Trace-based spike-timing-dependent plasticity.
//!
//! Pair-based STDP with exponentially decaying eligibility traces, as used
//! by the unsupervised SNN literature the paper follows:
//!
//! * a presynaptic spike at input `i` depresses `w[i][j]` in proportion to
//!   the postsynaptic trace of `j` (recent postsynaptic activity), and
//! * a postsynaptic spike at neuron `j` potentiates `w[i][j]` in proportion
//!   to the presynaptic trace of `i` (recent presynaptic activity).
//!
//! Weights are clamped to `[0, w_max]`.

use crate::synapse::StoredWeights;

/// STDP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StdpConfig {
    /// Potentiation learning rate (applied on postsynaptic spikes).
    pub lr_potentiate: f32,
    /// Depression learning rate (applied on presynaptic spikes).
    pub lr_depress: f32,
    /// Presynaptic trace time constant (ms).
    pub tau_pre: f32,
    /// Postsynaptic trace time constant (ms).
    pub tau_post: f32,
    /// Target presynaptic trace: on a postsynaptic spike, inputs whose
    /// trace is below this value are depressed (Diehl & Cook's
    /// `x_tar`), carving clean receptive fields.
    pub x_target: f32,
}

impl StdpConfig {
    /// Defaults tuned for the Diehl & Cook style network.
    pub fn standard() -> Self {
        Self {
            lr_potentiate: 0.003,
            lr_depress: 0.0012,
            tau_pre: 20.0,
            tau_post: 20.0,
            x_target: 0.02,
        }
    }
}

impl Default for StdpConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Eligibility traces and update rules for one input→neuron projection.
#[derive(Debug, Clone, PartialEq)]
pub struct StdpState {
    config: StdpConfig,
    trace_pre: Vec<f32>,
    trace_post: Vec<f32>,
}

impl StdpState {
    /// Zeroed traces for a projection of the given shape.
    pub fn new(config: StdpConfig, inputs: usize, neurons: usize) -> Self {
        Self {
            config,
            trace_pre: vec![0.0; inputs],
            trace_post: vec![0.0; neurons],
        }
    }

    /// The hyperparameters in use.
    pub fn config(&self) -> &StdpConfig {
        &self.config
    }

    /// Decays all traces by one timestep.
    pub fn decay(&mut self, dt_ms: f32) {
        let dp = dt_ms / self.config.tau_pre;
        for t in &mut self.trace_pre {
            *t -= *t * dp;
        }
        let dq = dt_ms / self.config.tau_post;
        for t in &mut self.trace_post {
            *t -= *t * dq;
        }
    }

    /// Processes presynaptic spikes: depress fan-out weights of each active
    /// input by the postsynaptic traces, then refresh the pre traces.
    pub fn on_pre_spikes(&mut self, weights: &mut StoredWeights, active_inputs: &[usize]) {
        let w_max = weights.w_max();
        let lr = self.config.lr_depress;
        for &i in active_inputs {
            let row = weights.fan_out_mut(i);
            for (j, w) in row.iter_mut().enumerate() {
                let eff = StoredWeights::effective(*w, w_max);
                *w = (eff - lr * self.trace_post[j]).clamp(0.0, w_max);
            }
            self.trace_pre[i] = 1.0;
        }
    }

    /// Processes postsynaptic spikes: each firing neuron's input weights
    /// move by `lr · (trace_pre − x_target) · (w_max − w)` — potentiation
    /// for recently active inputs, depression for silent ones — then the
    /// post traces are refreshed.
    pub fn on_post_spikes(&mut self, weights: &mut StoredWeights, fired: &[usize]) {
        let w_max = weights.w_max();
        let lr = self.config.lr_potentiate;
        let x_target = self.config.x_target;
        let neurons = weights.neurons();
        for &j in fired {
            for (i, &pre) in self.trace_pre.iter().enumerate() {
                let w = &mut weights.as_mut_slice()[i * neurons + j];
                let eff = StoredWeights::effective(*w, w_max);
                *w = (eff + lr * (pre - x_target) * (w_max - eff)).clamp(0.0, w_max);
            }
            self.trace_post[j] = 1.0;
        }
    }

    /// Resets all traces (between samples).
    pub fn reset(&mut self) {
        self.trace_pre.fill(0.0);
        self.trace_post.fill(0.0);
    }

    /// Presynaptic traces (for inspection/tests).
    pub fn trace_pre(&self) -> &[f32] {
        &self.trace_pre
    }

    /// Postsynaptic traces (for inspection/tests).
    pub fn trace_post(&self) -> &[f32] {
        &self.trace_post
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (StoredWeights, StdpState) {
        let w = StoredWeights::from_weights(4, 2, 1.0, vec![0.5; 8]);
        let s = StdpState::new(StdpConfig::standard(), 4, 2);
        (w, s)
    }

    #[test]
    fn pre_then_post_potentiates() {
        let (mut w, mut s) = setup();
        s.on_pre_spikes(&mut w, &[0]);
        s.decay(1.0);
        let before = w.raw(0, 1);
        s.on_post_spikes(&mut w, &[1]);
        assert!(w.raw(0, 1) > before, "pre→post order strengthens");
        // Inputs that were silent fall below the target trace and are
        // slightly depressed instead.
        assert!(w.raw(2, 1) < 0.5);
    }

    #[test]
    fn post_then_pre_depresses() {
        let (mut w, mut s) = setup();
        s.on_post_spikes(&mut w, &[0]);
        s.decay(1.0);
        let before = w.raw(1, 0);
        s.on_pre_spikes(&mut w, &[1]);
        assert!(w.raw(1, 0) < before, "post→pre order weakens");
    }

    #[test]
    fn traces_decay_exponentially() {
        let (mut w, mut s) = setup();
        s.on_pre_spikes(&mut w, &[0]);
        assert_eq!(s.trace_pre()[0], 1.0);
        for _ in 0..20 {
            s.decay(1.0);
        }
        let t = s.trace_pre()[0];
        // After one time constant: ~(1 - 1/20)^20 ≈ 0.358.
        assert!((0.3..0.45).contains(&t), "trace {t}");
    }

    #[test]
    fn weights_stay_in_bounds_under_hammering() {
        let (mut w, mut s) = setup();
        for _ in 0..200 {
            s.on_pre_spikes(&mut w, &[0, 1, 2, 3]);
            s.on_post_spikes(&mut w, &[0, 1]);
            s.decay(1.0);
        }
        assert!(w
            .as_slice()
            .iter()
            .all(|&x| (0.0..=1.0).contains(&x) && x.is_finite()));
    }

    #[test]
    fn potentiation_saturates_at_w_max() {
        let (mut w, mut s) = setup();
        // One pre spike arms the trace; repeated post spikes then drive the
        // soft-bounded weight towards (but never past) w_max.
        s.on_pre_spikes(&mut w, &[0]);
        for _ in 0..2000 {
            s.on_post_spikes(&mut w, &[0]);
        }
        let v = w.raw(0, 0);
        assert!(v <= 1.0 && v > 0.95, "saturating potentiation, got {v}");
    }

    #[test]
    fn reset_clears_traces() {
        let (mut w, mut s) = setup();
        s.on_pre_spikes(&mut w, &[0]);
        s.on_post_spikes(&mut w, &[0]);
        s.reset();
        assert!(s.trace_pre().iter().all(|&t| t == 0.0));
        assert!(s.trace_post().iter().all(|&t| t == 0.0));
    }

    #[test]
    fn corrupted_weight_is_scrubbed_on_update() {
        let mut w = StoredWeights::from_weights(1, 1, 1.0, vec![f32::INFINITY]);
        let mut s = StdpState::new(StdpConfig::standard(), 1, 1);
        s.on_pre_spikes(&mut w, &[0]);
        assert!(w.raw(0, 0).is_finite());
    }
}
