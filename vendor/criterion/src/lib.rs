//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of criterion's API that the workspace's 14 bench
//! targets use — `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `Throughput`
//! (`BenchmarkGroup::throughput`), `black_box` and the `criterion_group!`
//! / `criterion_main!` macros — as a small but *working* harness: each
//! benchmark is warmed up, timed over adaptively chosen iteration batches
//! until the measurement budget is spent, and reported as
//! `min / mean / max` nanoseconds per iteration on stdout. When a group
//! declares a [`Throughput`], each report line additionally carries the
//! mean rate (`elem/s` or bytes/s), which is how the `batch_eval` bench
//! surfaces scalar-vs-batched samples/sec.
//!
//! Statistical machinery (outlier classification, HTML reports, comparison
//! against saved baselines) is intentionally absent.

use std::time::{Duration, Instant};

/// An opaque identity function that inhibits constant folding.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The stub runs one input per
/// routine invocation regardless of the variant, which is semantically valid
/// (criterion only uses the hint to size batches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Timing state handed to the benchmark closure.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Time `routine`, including nothing but the routine itself.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up round; also seeds the per-iteration time estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));

        let per_sample_budget =
            self.measurement_time.max(Duration::from_millis(1)) / (self.sample_size.max(1) as u32);
        let iters_per_sample =
            (per_sample_budget.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u32;

        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Units a benchmark processes per iteration; declared on a group via
/// [`BenchmarkGroup::throughput`] so reports carry a rate next to the
/// timing. The stub treats `Bytes` and `BytesDecimal` identically
/// (decimal-prefixed output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration, reported with decimal prefixes.
    BytesDecimal(u64),
    /// Elements (e.g. samples, images) processed per iteration.
    Elements(u64),
}

impl Throughput {
    /// Human-readable rate for `count` units over a `mean_ns` iteration.
    fn rate(self, mean_ns: u128) -> String {
        let (count, unit) = match self {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B/s"),
            Throughput::Elements(n) => (n, "elem/s"),
        };
        if mean_ns == 0 {
            return format!("inf {unit}");
        }
        let per_sec = count as f64 * 1e9 / mean_ns as f64;
        if per_sec >= 1e9 {
            format!("{:.3} G{unit}", per_sec / 1e9)
        } else if per_sec >= 1e6 {
            format!("{:.3} M{unit}", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:.3} K{unit}", per_sec / 1e3)
        } else {
            format!("{per_sec:.3} {unit}")
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
    let min = *ns.iter().min().unwrap();
    let max = *ns.iter().max().unwrap();
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    let rate = throughput
        .map(|t| format!("  thrpt: {}", t.rate(mean)))
        .unwrap_or_default();
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples){rate}",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        ns.len()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level harness object; one per bench binary.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub ignores CLI arguments
    /// (cargo passes `--bench` when running bench targets).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(name, &samples, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing sample/time settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the units each subsequent benchmark in this group
    /// processes per iteration; reports then include the mean rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &samples, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Benchmark ids of the form `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn throughput_rates_format_sensibly() {
        // 1000 elements in 1 µs → 1 Gelem/s; 10 elements in 1 ms → 10 Kelem/s.
        assert_eq!(Throughput::Elements(1000).rate(1_000), "1.000 Gelem/s");
        assert_eq!(Throughput::Elements(10).rate(1_000_000), "10.000 Kelem/s");
        assert_eq!(Throughput::Bytes(500).rate(1_000_000_000), "500.000 B/s");
        assert_eq!(Throughput::Elements(1).rate(0), "inf elem/s");
    }

    #[test]
    fn group_with_throughput_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("thrpt");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .throughput(Throughput::Elements(64));
        g.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(10));
        g.bench_function("id", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
