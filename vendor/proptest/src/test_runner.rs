//! Run configuration and case-level error plumbing.

use std::fmt;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *passing* cases required before the property is accepted.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the seed suite fast while
        // still exercising the boundary cases plus a uniform sample.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is regenerated, not failed.
    Reject(String),
    /// A `prop_assert*!` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;
