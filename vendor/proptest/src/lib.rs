//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest used by the workspace's property
//! tests: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! range and `any::<T>()` strategies, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * **deterministic**: cases are generated from a fixed seed derived from
//!   the test name, so CI failures always reproduce locally;
//! * **no shrinking**: a failing case is reported with its inputs
//!   (`Debug`-formatted) but not minimised;
//! * **edge-case biased sampling**: each strategy yields its boundary
//!   values (min, max, zero where applicable) in the first cases before
//!   switching to uniform sampling, recovering some of the bug-finding
//!   power that shrinking would otherwise provide.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test RNG: SplitMix64 over a seed hashed from the test
/// name. Exposed for the macro expansion only.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path keeps distinct tests decorrelated.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        CaseRng {
            state: h ^ 0x5EED_5EED_5EED_5EED,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Expands to per-case `#[test]` functions. Supports the two shapes the
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn my_prop(x in 0u64..100, p in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::CaseRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case_index: u64 = 0;
                while passed < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample_case(
                            &($strat), &mut rng, case_index,
                        );
                    )+
                    case_index += 1;
                    let inputs = || {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&::std::format!("{:?}, ", $arg));
                        )+
                        s
                    };
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(e) if e.is_rejection() => {
                            rejected += 1;
                            ::std::assert!(
                                rejected < config.cases.saturating_mul(256).max(1024),
                                "proptest: too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err(e) => {
                            ::std::panic!(
                                "proptest case failed: {}\n  inputs: {}",
                                e, inputs()
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", x)`
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l
                ),
            ));
        }
    }};
}

/// Discard the current case (not counted toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn config_and_assume_work(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    proptest! {
        #[test]
        fn any_covers_extremes(_x in any::<u64>(), _b in any::<bool>()) {
            prop_assert!(true);
        }
    }

    #[test]
    fn first_cases_hit_range_boundaries() {
        use crate::strategy::Strategy;
        let mut rng = crate::CaseRng::for_test("boundary-check");
        let s = 3u64..17;
        let first = s.sample_case(&mut rng, 0);
        let second = s.sample_case(&mut rng, 1);
        assert_eq!(first, 3);
        assert_eq!(second, 16);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
