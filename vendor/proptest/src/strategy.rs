//! Value-generation strategies: integer/float ranges and `any::<T>()`.
//!
//! `sample_case` receives the case index so strategies can emit their
//! boundary values first (cases 0 and 1), standing in for the shrinking
//! machinery real proptest uses to find minimal counterexamples.

use crate::CaseRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of generated values for one macro argument.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample_case(&self, rng: &mut CaseRng, case_index: u64) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_case(&self, rng: &mut CaseRng, case_index: u64) -> $t {
                assert!(self.start < self.end, "proptest: empty range strategy");
                match case_index {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => {
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let draw = (rng.next_u64() as u128) % span;
                        (self.start as i128 + draw as i128) as $t
                    }
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_case(&self, rng: &mut CaseRng, case_index: u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "proptest: empty range strategy");
                match case_index {
                    0 => start,
                    1 => end,
                    _ => {
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let draw = (rng.next_u64() as u128) % span;
                        (start as i128 + draw as i128) as $t
                    }
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_case(&self, rng: &mut CaseRng, case_index: u64) -> $t {
                assert!(self.start < self.end, "proptest: empty range strategy");
                match case_index {
                    0 => self.start,
                    _ => {
                        let unit = rng.unit_f64() as $t;
                        let v = self.start + unit * (self.end - self.start);
                        // Guard against rounding up to the excluded endpoint.
                        if v >= self.end { self.start } else { v }
                    }
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_case(&self, rng: &mut CaseRng, case_index: u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "proptest: empty range strategy");
                match case_index {
                    0 => start,
                    1 => end,
                    _ => start + (rng.unit_f64() as $t) * (end - start),
                }
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn generate(rng: &mut CaseRng, case_index: u64) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut CaseRng, case_index: u64) -> Self {
                match case_index {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut CaseRng, case_index: u64) -> Self {
                match case_index {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => -1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn generate(rng: &mut CaseRng, case_index: u64) -> Self {
        match case_index {
            0 => false,
            1 => true,
            _ => rng.next_u64() & 1 == 1,
        }
    }
}

impl Arbitrary for f64 {
    fn generate(rng: &mut CaseRng, case_index: u64) -> Self {
        match case_index {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            3 => f64::MAX,
            4 => f64::MIN,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn generate(rng: &mut CaseRng, case_index: u64) -> Self {
        match case_index {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            3 => f32::MAX,
            4 => f32::MIN,
            _ => f32::from_bits(rng.next_u64() as u32),
        }
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Full-domain strategy for `T`, biased toward boundary values in the
/// first few cases.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_case(&self, rng: &mut CaseRng, case_index: u64) -> T {
        T::generate(rng, case_index)
    }
}
