//! Named RNG types. Only `StdRng` is provided; it is deterministic and
//! portable (xoshiro256++), unlike the real crate's `StdRng` whose
//! algorithm is explicitly unspecified — for a reproduction harness the
//! stronger guarantee is a feature.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator.
///
/// Passes BigCrush in the upstream reference implementation; 2^256 − 1
/// period; 4×u64 state. Seeded from 32 bytes, or from a `u64` through the
/// SplitMix64 expansion in [`SeedableRng::seed_from_u64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}
