//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact API surface the workspace uses — `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng` — backed by a deterministic xoshiro256++ generator
//! seeded through SplitMix64. Determinism given a seed is a hard
//! requirement of the SparkXD reproduction (same seed ⇒ bit-identical
//! pipeline outcomes), which this implementation guarantees across
//! platforms: no OS entropy is ever consulted.

pub mod rngs;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
///
/// Floats are sampled from the half-open unit interval `[0, 1)` exactly as
/// `rand`'s `Standard` distribution does (53 / 24 explicit mantissa bits).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// The impls are generic over `Range<T>` (not per-concrete-range) so type
/// inference can flow from the surrounding expression into unsuffixed float
/// literals, exactly as with the real crate's `SampleUniform`.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128;
                let draw = <u128 as StandardSample>::sample(rng) % span;
                (start as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = <u128 as StandardSample>::sample(rng) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                start + unit * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (same scheme as the
    /// real `rand` crate), so low-entropy seeds still produce well-mixed
    /// initial states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let bytes = splitmix_finalize(state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Derives an independent generator for logical stream `stream` of the
    /// base seed `seed` — e.g. one RNG per sample index, so work items can
    /// be processed in any order (or concurrently) and still reproduce the
    /// exact bit stream a sequential run would see.
    ///
    /// The two words are combined asymmetrically through the SplitMix64
    /// finalizer, so `(a, b)` and `(b, a)` derive unrelated states and
    /// stream 0 differs from plain [`seed_from_u64`](Self::seed_from_u64).
    fn seed_from_u64_stream(seed: u64, stream: u64) -> Self {
        let inner = splitmix_finalize(stream.wrapping_add(0x9E37_79B9_7F4A_7C15));
        Self::seed_from_u64(splitmix_finalize(seed ^ inner))
    }
}

/// The SplitMix64 output mixer: bijective on `u64`, excellent avalanche.
#[inline]
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn stream_derivation_is_deterministic() {
        let mut a = StdRng::seed_from_u64_stream(42, 7);
        let mut b = StdRng::seed_from_u64_stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_of_one_seed_diverge() {
        let mut a = StdRng::seed_from_u64_stream(42, 0);
        let mut b = StdRng::seed_from_u64_stream(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_combination_is_asymmetric() {
        let mut ab = StdRng::seed_from_u64_stream(3, 9);
        let mut ba = StdRng::seed_from_u64_stream(9, 3);
        let same = (0..64).filter(|_| ab.next_u64() == ba.next_u64()).count();
        assert_eq!(same, 0, "(seed, stream) must not commute");
    }

    #[test]
    fn stream_zero_differs_from_plain_seed() {
        let mut plain = StdRng::seed_from_u64(5);
        let mut stream0 = StdRng::seed_from_u64_stream(5, 0);
        let same = (0..64)
            .filter(|_| plain.next_u64() == stream0.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn adjacent_streams_are_statistically_independent() {
        // Means of adjacent streams must each be centred: a lazy derivation
        // (e.g. seed + stream) would still pass divergence tests but show
        // correlated low bits; the finalizer avalanche prevents that.
        for stream in 0..8u64 {
            let mut rng = StdRng::seed_from_u64_stream(1234, stream);
            let n = 10_000;
            let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.02, "stream {stream} mean {mean}");
        }
    }

    #[test]
    fn unit_float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
