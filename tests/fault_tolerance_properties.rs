//! Property-style integration tests on the fault-injection / SNN interface.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkxd::data::{SynthDigits, SyntheticSource};
use sparkxd::error::{ErrorModel, Injector};
use sparkxd::snn::{DiehlCookNetwork, SnnConfig, StoredWeights};

fn tiny_trained_net() -> (DiehlCookNetwork, sparkxd::snn::NeuronLabeler) {
    let train = SynthDigits.generate(60, 1);
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(20).with_timesteps(30));
    net.train_epoch(&train, 3);
    let labeler = net.label_neurons(&train, 4);
    (net, labeler)
}

#[test]
fn injection_at_zero_ber_never_changes_accuracy() {
    let (mut net, labeler) = tiny_trained_net();
    let test = SynthDigits.generate(30, 2);
    let before = net.evaluate(&test, &labeler, 9);
    let mut injector = Injector::new(ErrorModel::Model0, 5);
    let mut w = net.weights().clone();
    let report = injector.inject_uniform(w.as_mut_slice(), 0.0);
    assert_eq!(report.flips, 0);
    net.set_weights(w);
    assert_eq!(net.evaluate(&test, &labeler, 9), before);
}

#[test]
fn clamped_network_never_panics_under_extreme_corruption() {
    let (mut net, labeler) = tiny_trained_net();
    let test = SynthDigits.generate(10, 2);
    let mut injector = Injector::new(ErrorModel::Model0, 6);
    let mut w = net.weights().clone();
    injector.inject_uniform(w.as_mut_slice(), 0.4); // catastrophic BER
    net.set_weights(w);
    let acc = net.evaluate(&test, &labeler, 9);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn spike_counts_are_reproducible_for_equal_seeds() {
    let (mut net, _) = tiny_trained_net();
    let test = SynthDigits.generate(5, 2);
    let run = |net: &mut DiehlCookNetwork| {
        let mut rng = StdRng::seed_from_u64(77);
        test.iter()
            .map(|(img, _)| net.run_sample(img.pixels(), &mut rng, false).unwrap())
            .collect::<Vec<_>>()
    };
    let a = run(&mut net);
    let b = run(&mut net);
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn injected_flip_count_tracks_requested_ber(ber_exp in 2u32..4, seed in 0u64..100) {
        let ber = 10f64.powi(-(ber_exp as i32));
        let mut w = StoredWeights::random(784, 20, 1.0, seed);
        let mut injector = Injector::new(ErrorModel::Model0, seed);
        let report = injector.inject_uniform(w.as_mut_slice(), ber);
        let n_bits = (784 * 20 * 32) as f64;
        let expected = n_bits * ber;
        let sigma = expected.sqrt().max(1.0);
        prop_assert!(
            ((report.flips as f64) - expected).abs() < 6.0 * sigma,
            "flips {} vs expected {expected}", report.flips
        );
    }

    #[test]
    fn effective_weights_always_bounded(seed in 0u64..50) {
        let mut w = StoredWeights::random(64, 8, 1.0, seed);
        let mut injector = Injector::new(ErrorModel::Model0, seed ^ 0xF00);
        injector.inject_uniform(w.as_mut_slice(), 1e-2);
        for &raw in w.as_slice() {
            let eff = StoredWeights::effective(raw, 1.0);
            prop_assert!((0.0..=1.0).contains(&eff) && eff.is_finite());
        }
    }
}
