//! Thread-count invariance: the parallel engine derives each sample's RNG
//! from `(seed, sample_index)` and merges order-independent aggregates, so
//! a `PipelineOutcome` must be bit-identical whether the engine runs on 1
//! worker, many workers, or the machine default.
//!
//! This file holds a single `#[test]` on purpose: `SPARKXD_THREADS` is
//! process-global, and cargo runs the tests *within* a binary
//! concurrently — a sibling test could otherwise observe a half-way
//! override.

use sparkxd::core::pipeline::{PipelineConfig, PipelineOutcome, SparkXdPipeline};

const THREADS_ENV: &str = "SPARKXD_THREADS";

/// Trimmed below `small_demo` so four full pipeline runs stay in seconds.
fn tiny_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        neurons: 20,
        timesteps: 20,
        train_samples: 40,
        test_samples: 20,
        baseline_epochs: 1,
        ..PipelineConfig::small_demo(seed)
    }
}

fn run_with_threads(threads: Option<&str>) -> PipelineOutcome {
    match threads {
        Some(n) => std::env::set_var(THREADS_ENV, n),
        None => std::env::remove_var(THREADS_ENV),
    }
    let outcome = SparkXdPipeline::new(tiny_config(42))
        .run()
        .expect("tiny pipeline run");
    std::env::remove_var(THREADS_ENV);
    outcome
}

#[test]
fn pipeline_outcome_is_bit_identical_across_thread_counts() {
    let serial = run_with_threads(Some("1"));
    let two = run_with_threads(Some("2"));
    let five = run_with_threads(Some("5"));
    let machine_default = run_with_threads(None);
    // Derived PartialEq compares every f64 exactly: any order-dependent
    // reduction or shared RNG stream would show up here.
    assert_eq!(serial, two, "1 worker vs 2 workers");
    assert_eq!(serial, five, "1 worker vs 5 workers");
    assert_eq!(serial, machine_default, "1 worker vs machine default");
}
