//! Thread-count, batch-size, tile-width and kernel invariance: the parallel
//! engine derives each sample's RNG from `(seed, sample_index)` and
//! merges order-independent aggregates, and the batched read path
//! accumulates per-sample drive in the same ascending-row order as the
//! scalar path regardless of how the neuron axis is tiled — so a
//! `PipelineOutcome` must be bit-identical whether the engine runs on
//! 1 worker or many, scalar (B = 1) or batched (any B), one drive tile
//! or many, or the machine defaults.
//!
//! This file holds a single `#[test]` on purpose: `SPARKXD_THREADS`,
//! `SPARKXD_BATCH`, `SPARKXD_TILE`, `SPARKXD_KERNEL`, `SPARKXD_INTRA`
//! and `SPARKXD_TELEMETRY` are process-global, and cargo runs the tests
//! *within* a binary concurrently — a sibling test could otherwise
//! observe a half-way override.

use sparkxd::core::pipeline::{PipelineConfig, PipelineOutcome, SparkXdPipeline};

const THREADS_ENV: &str = "SPARKXD_THREADS";
const BATCH_ENV: &str = "SPARKXD_BATCH";
const TILE_ENV: &str = "SPARKXD_TILE";
const KERNEL_ENV: &str = "SPARKXD_KERNEL";
const INTRA_ENV: &str = "SPARKXD_INTRA";
const TELEMETRY_ENV: &str = "SPARKXD_TELEMETRY";

/// Trimmed below `small_demo` so the matrix of full pipeline runs stays in
/// seconds. Honours `SPARKXD_PRECISION` (the CI storage knob): with
/// `int8`/`int16` set, every run in the matrix takes the packed
/// quantised-image pipeline path, which must be just as engine-invariant
/// as the FP32 one.
fn tiny_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        neurons: 20,
        timesteps: 20,
        train_samples: 40,
        test_samples: 20,
        baseline_epochs: 1,
        ..PipelineConfig::small_demo(seed)
    }
    .with_precision(sparkxd::snn::WeightPrecision::from_env())
}

fn run_with(
    threads: Option<&str>,
    batch: Option<&str>,
    tile: Option<&str>,
    kernel: Option<&str>,
    intra: Option<&str>,
    telemetry: Option<&str>,
) -> PipelineOutcome {
    for (var, value) in [
        (THREADS_ENV, threads),
        (BATCH_ENV, batch),
        (TILE_ENV, tile),
        (KERNEL_ENV, kernel),
        (INTRA_ENV, intra),
        (TELEMETRY_ENV, telemetry),
    ] {
        match value {
            Some(v) => std::env::set_var(var, v),
            None => std::env::remove_var(var),
        }
    }
    // The telemetry mode is read once per process by design; the matrix
    // needs each run to honour its own knob value.
    sparkxd::telemetry::force_mode_from_env();
    let outcome = SparkXdPipeline::new(tiny_config(42))
        .run()
        .expect("tiny pipeline run");
    for var in [
        THREADS_ENV,
        BATCH_ENV,
        TILE_ENV,
        KERNEL_ENV,
        INTRA_ENV,
        TELEMETRY_ENV,
    ] {
        std::env::remove_var(var);
    }
    outcome
}

#[test]
fn pipeline_outcome_is_bit_identical_across_thread_and_batch_counts() {
    // Scalar serial reference: 1 worker, batch size 1 (the pre-split
    // per-sample read path), default tiling, portable kernel, serial
    // sweep, telemetry off.
    let reference = run_with(
        Some("1"),
        Some("1"),
        None,
        Some("scalar"),
        Some("off"),
        Some("off"),
    );
    // Derived PartialEq compares every f64 exactly: any order-dependent
    // reduction, shared RNG stream, or scalar/batched read-path divergence
    // would show up here. Tile widths straddle the 20-neuron config:
    // single-lane tiles, a ragged 7-wide sweep, and an oversized width
    // that clamps back to one tile. The kernel axis crosses the same
    // points with the SIMD kernel pinned on (falls back to scalar on
    // non-AVX2 hosts, so the matrix stays portable) and left on auto; the
    // intra axis pins the sweep split explicitly (a `3` forces a real
    // multi-worker split regardless of host cores), on budget-sized
    // `auto`, and unset. The telemetry axis proves the observation-only
    // contract: counters-only, full spans, and unset must all leave the
    // outcome bit-identical to telemetry-off.
    for (threads, batch, tile, kernel, intra, telemetry) in [
        (
            Some("2"),
            Some("1"),
            None,
            Some("scalar"),
            Some("off"),
            Some("counters"),
        ),
        (
            Some("1"),
            Some("3"),
            Some("1"),
            Some("avx2"),
            Some("3"),
            Some("spans"),
        ),
        (
            Some("2"),
            Some("8"),
            Some("7"),
            Some("avx2"),
            Some("auto"),
            Some("off"),
        ),
        (
            Some("5"),
            Some("17"),
            Some("64"),
            Some("auto"),
            Some("2"),
            Some("spans"),
        ),
        (
            None,
            None,
            Some("1"),
            Some("avx2"),
            Some("4"),
            Some("counters"),
        ),
        (None, None, None, None, None, None),
    ] {
        let outcome = run_with(threads, batch, tile, kernel, intra, telemetry);
        assert_eq!(
            reference, outcome,
            "threads={threads:?} batch={batch:?} tile={tile:?} kernel={kernel:?} \
             intra={intra:?} telemetry={telemetry:?} diverged from scalar serial"
        );
    }
}
