//! Property tests for the neuron-tiled drive matrix: `run_batch` sweeps
//! the `[B × n_neurons]` drive slab in cache-sized neuron tiles
//! (`SPARKXD_TILE` / `BatchState::with_tile`), and the partition must
//! never change a result — spike counts, accuracy and labels stay
//! bit-identical to the scalar `run_sample` path for **any** tile width.
//!
//! The deterministic matrix pins the boundary shapes the partition can
//! get wrong: tile width 1 (one lane per tile), widths that do not divide
//! `n_neurons`, width exactly `n_neurons`, and widths beyond it
//! (including `usize::MAX`), all crossed with dead-row skipping, read
//! clamping and hard WTA (whose winner must be resolved *across* tile
//! boundaries). Tile/batch/thread pinning goes through the
//! `BatchEvaluator`/`BatchState` APIs rather than the process-global
//! environment, so these tests can run concurrently.

use proptest::prelude::*;
use rand::rngs::StdRng;
use sparkxd::data::{Dataset, SynthDigits, SyntheticSource};
use sparkxd::snn::engine::{sample_rng, BatchEvaluator};
use sparkxd::snn::{
    BatchState, DiehlCookNetwork, IntraChoice, KernelChoice, NetworkParams, QuantizedImage,
    RunState, SnnConfig, WeightPrecision,
};
use std::sync::OnceLock;

/// Per-sample scalar reference counts: one `run_sample` per image, RNG
/// stream `(seed, index)` — exactly what the engine derives per sample.
fn scalar_counts(params: &NetworkParams, data: &Dataset, seed: u64) -> Vec<Vec<u32>> {
    let mut state = RunState::for_params(params);
    (0..data.len())
        .map(|idx| {
            let mut rng = sample_rng(seed, idx as u64);
            params
                .run_sample(&mut state, data.get(idx).0.pixels(), &mut rng)
                .unwrap()
        })
        .collect()
}

/// Batched counts at one (batch, tile) point via `BatchState::with_tile`.
fn tiled_counts(
    params: &NetworkParams,
    data: &Dataset,
    seed: u64,
    batch: usize,
    tile: usize,
) -> Vec<Vec<u32>> {
    let mut state = BatchState::for_params(params, batch).with_tile(tile);
    let mut got = Vec::with_capacity(data.len());
    let mut start = 0;
    while start < data.len() {
        let end = (start + batch).min(data.len());
        let pixels: Vec<&[f32]> = (start..end).map(|i| data.get(i).0.pixels()).collect();
        let mut rngs: Vec<StdRng> = (start..end).map(|i| sample_rng(seed, i as u64)).collect();
        got.extend(params.run_batch(&mut state, &pixels, &mut rngs).unwrap());
        start = end;
    }
    got
}

/// Applies the CI storage knob: with `SPARKXD_PRECISION=int8|int16` set,
/// the trained weights are replaced by their packed-image round-trip, so
/// the whole invariance matrix runs on the quantised weight substrate
/// (the corrupt words are planted afterwards and survive untouched).
fn apply_storage_precision(net: &mut DiehlCookNetwork) {
    let precision = WeightPrecision::from_env();
    if precision.is_quantized() {
        net.set_weights(QuantizedImage::roundtrip(net.weights(), precision));
    }
}

/// A trained network at `n_neurons = 23` — prime, so **no** tile width in
/// `2..23` divides it and every multi-tile sweep ends on a ragged tail
/// tile — with hand-planted corruption: dead (all-zero) input rows next
/// to live ones exercise the merge's dead-row skipping against the
/// recorded member lists, NaN/Inf/negative words exercise the read rule.
fn fixture() -> &'static (NetworkParams, Dataset) {
    static FIXTURE: OnceLock<(NetworkParams, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let train = SynthDigits.generate(30, 1);
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(23).with_timesteps(30));
        net.train_epoch(&train, 3);
        apply_storage_precision(&mut net);
        net.with_weights_mut(|w| {
            for j in 0..23 {
                w.set(40, j, 0.0); // dead row in the active band
                w.set(41, j, 0.0); // two adjacent dead rows
            }
            w.set(42, 3, f32::NAN);
            w.set(42, 22, f32::INFINITY); // corrupt word on the last lane
            w.set(43, 0, -2.0);
        });
        (net.into_params(), SynthDigits.generate(13, 2))
    })
}

#[test]
fn issue_tile_boundaries_are_bit_identical_to_scalar() {
    let (params, data) = fixture();
    let reference = scalar_counts(params, data, 31);
    // 1: one lane per tile; 4/5/9: ragged tails at n = 23; 22: the last
    // lane alone in the tail tile; 23: exact fit (the untiled sweep);
    // 24 and usize::MAX: clamp back to a single tile.
    for tile in [1usize, 4, 5, 9, 22, 23, 24, usize::MAX] {
        for batch in [2usize, 5, 13] {
            assert_eq!(
                tiled_counts(params, data, 31, batch, tile),
                reference,
                "tile={tile} batch={batch}"
            );
        }
    }
}

#[test]
fn hard_wta_winner_is_resolved_across_tile_boundaries() {
    // Hard WTA picks one global winner per timestep; with tile width 1
    // every candidate sits in its own tile, so any per-tile shortcut in
    // the winner or inhibition-strength reduction would diverge here.
    let mut config = SnnConfig::for_neurons(17).with_timesteps(25);
    config.hard_wta = true;
    let params = NetworkParams::new(config);
    let data = SynthDigits.generate(7, 5);
    let reference = scalar_counts(&params, &data, 9);
    let total: u32 = reference.iter().flatten().sum();
    assert!(total > 0, "hard-WTA fixture must actually spike");
    for tile in [1usize, 2, 16, 17] {
        assert_eq!(
            tiled_counts(&params, &data, 9, 4, tile),
            reference,
            "tile={tile}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (tile, batch, thread, kernel, intra, seed) point — driven
    /// through the full `BatchEvaluator` sharding stack — matches the
    /// scalar serial path.
    #[test]
    fn arbitrary_tile_widths_match_scalar(
        tile in 1usize..40,
        batch in 1usize..12,
        threads in 1usize..5,
        kernel_idx in 0usize..3,
        intra_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let kernel = [KernelChoice::Scalar, KernelChoice::Auto, KernelChoice::Avx2][kernel_idx];
        let intra = [
            IntraChoice::Off,
            IntraChoice::Auto,
            IntraChoice::Workers(2),
            IntraChoice::Workers(3),
        ][intra_idx];
        let (params, data) = fixture();
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar);
        let tiled = BatchEvaluator::with_threads(threads)
            .with_batch(batch)
            .with_tile(tile)
            .with_kernel(kernel)
            .with_intra(intra);
        prop_assert_eq!(
            tiled.spike_counts(params, data, seed),
            scalar.spike_counts(params, data, seed)
        );
        let scalar_labels = scalar.label_neurons(params, data, seed);
        let tiled_labels = tiled.label_neurons(params, data, seed);
        prop_assert_eq!(tiled_labels.assignments(), scalar_labels.assignments());
        prop_assert_eq!(
            tiled.evaluate(params, data, &scalar_labels, seed),
            scalar.evaluate(params, data, &scalar_labels, seed)
        );
    }
}
