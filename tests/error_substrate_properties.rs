//! Property-style tests for the approximate-DRAM error substrate:
//! the BER(V) curve must be monotonically non-increasing in voltage, and
//! uniform injection must flip a number of bits consistent with the
//! configured BER within statistical bounds.

use proptest::prelude::*;
use sparkxd::circuit::Volt;
use sparkxd::error::{BerCurve, ErrorModel, Injector};

proptest! {
    /// Raising the supply voltage never raises the bit-error rate, for any
    /// pair of voltages across (and beyond) the paper's operating window.
    #[test]
    fn ber_monotone_non_increasing_in_voltage(v1 in 0.90f64..1.40, v2 in 0.90f64..1.40) {
        let curve = BerCurve::paper_default();
        let (lo, hi) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(
            curve.ber_at(Volt(hi)) <= curve.ber_at(Volt(lo)),
            "BER rose with voltage: BER({hi}) > BER({lo})"
        );
    }

    /// BERs are probabilities: finite and within [0, 1] over a generous
    /// voltage span.
    #[test]
    fn ber_is_a_probability(v in 0.5f64..2.0) {
        let ber = BerCurve::paper_default().ber_at(Volt(v));
        prop_assert!(ber.is_finite());
        prop_assert!((0.0..=1.0).contains(&ber), "BER {ber} outside [0,1] at {v} V");
    }
}

#[test]
fn ber_curve_anchors_match_paper_fig2c() {
    // Fig. 2(c): nominal voltage is error-free; the lowest operating point
    // (1.025 V) sits around 1e-3.
    let curve = BerCurve::paper_default();
    assert!(curve.ber_at(Volt(1.35)) < 1e-9);
    let lowest = curve.ber_at(Volt(1.025));
    assert!(
        (1e-4..1e-2).contains(&lowest),
        "BER at 1.025 V out of band: {lowest}"
    );
}

/// The inverse lookup must agree with the forward curve: for each paper
/// operating point, `voltage_for_ber(ber_at(v)) ≈ v`.
#[test]
fn voltage_for_ber_inverts_ber_at() {
    let curve = BerCurve::paper_default();
    for v in [1.025, 1.1, 1.175, 1.25] {
        let ber = curve.ber_at(Volt(v));
        let back = curve.voltage_for_ber(ber);
        assert!(
            (back.0 - v).abs() < 0.01,
            "round-trip {v} V -> BER {ber:.3e} -> {} V",
            back.0
        );
    }
}

/// Flip counts follow Binomial(n_bits, ber): the empirical rate averaged
/// over many independent injections must land within 5 sigma of the
/// configured BER. Per-seed draws are checked loosely (8 sigma) so a single
/// unlucky-but-legal draw cannot fail CI while a biased injector still will.
#[test]
fn injected_flip_count_consistent_with_ber() {
    let words = 8192usize;
    let bits_per_word = 32u64;
    let n_bits = (words as u64 * bits_per_word) as f64;

    for ber in [1e-4, 1e-3, 1e-2] {
        let trials = 24;
        let mut total_flips = 0u64;
        for seed in 0..trials {
            let mut weights = vec![0.37f32; words];
            let mut injector = Injector::new(ErrorModel::Model0, 1000 + seed);
            let report = injector.inject_uniform(&mut weights, ber);
            assert_eq!(report.words as usize, words);

            let expected = n_bits * ber;
            let sigma = (n_bits * ber * (1.0 - ber)).sqrt();
            assert!(
                (report.flips as f64 - expected).abs() <= 8.0 * sigma + 1.0,
                "seed {seed}: {} flips vs expected {expected:.1} (sigma {sigma:.1}) at ber {ber}",
                report.flips
            );
            total_flips += report.flips as u64;
        }

        let n = trials as f64;
        let expected = n_bits * n * ber;
        let sigma = (n_bits * n * ber * (1.0 - ber)).sqrt();
        assert!(
            (total_flips as f64 - expected).abs() <= 5.0 * sigma,
            "aggregate {total_flips} flips vs expected {expected:.1} (sigma {sigma:.1}) at ber {ber}"
        );
    }
}

/// Zero BER must flip nothing; the domain's upper edge (BER 0.5, the
/// highest rate `inject_uniform` accepts) must flip close to half of all
/// bits.
#[test]
fn injection_extremes() {
    let mut weights = vec![0.5f32; 256];
    let mut injector = Injector::new(ErrorModel::Model0, 3);
    let report = injector.inject_uniform(&mut weights, 0.0);
    assert_eq!(report.flips, 0);
    assert!(weights.iter().all(|w| *w == 0.5));

    let n_bits = (256 * 32) as f64;
    let mut injector = Injector::new(ErrorModel::Model0, 3);
    let report = injector.inject_uniform(&mut weights, 0.5);
    let expected = n_bits * 0.5;
    let sigma = (n_bits * 0.25).sqrt();
    assert!(
        (report.flips as f64 - expected).abs() <= 6.0 * sigma,
        "BER=0.5 flipped {} bits, expected about {expected:.0}",
        report.flips
    );
}

/// Each injection round advances the injector's internal stream: repeated
/// rounds at the same BER must not reuse the same flip positions (the
/// fault-aware trainer injects every epoch).
#[test]
fn successive_rounds_draw_fresh_errors() {
    let mut injector = Injector::new(ErrorModel::Model0, 11);
    let mut first = vec![0.25f32; 4096];
    injector.inject_uniform(&mut first, 1e-3);
    let mut second = vec![0.25f32; 4096];
    injector.inject_uniform(&mut second, 1e-3);
    assert_ne!(first, second, "two rounds produced identical corruption");
}
