//! Property tests for the batched read path: `run_batch` (as driven by the
//! `BatchEvaluator`) must produce bit-identical spike counts and accuracy
//! to the scalar `run_sample` path for any (batch size, worker count,
//! tile width, kernel, intra-sweep split) combination.
//!
//! Unlike `thread_invariance.rs`, these tests pin workers, batch size and
//! tile width through the `BatchEvaluator` API rather than the
//! process-global environment variables, so they can run concurrently.

use proptest::prelude::*;
use sparkxd::data::{Dataset, SynthDigits, SyntheticSource};
use sparkxd::snn::engine::BatchEvaluator;
use sparkxd::snn::{
    DiehlCookNetwork, IntraChoice, KernelChoice, NetworkParams, NeuronLabeler, QuantizedImage,
    SnnConfig, WeightPrecision,
};
use std::sync::OnceLock;

/// Applies the CI storage knob: with `SPARKXD_PRECISION=int8|int16` set,
/// the trained weights are replaced by their packed-image round-trip, so
/// the whole invariance matrix runs on the quantised weight substrate.
fn apply_storage_precision(net: &mut DiehlCookNetwork) {
    let precision = WeightPrecision::from_env();
    if precision.is_quantized() {
        net.set_weights(QuantizedImage::roundtrip(net.weights(), precision));
    }
}

/// One small trained network + dataset + labeler shared by every property
/// case (training once keeps the 25-case matrix in seconds).
fn fixture() -> &'static (NetworkParams, Dataset, NeuronLabeler) {
    static FIXTURE: OnceLock<(NetworkParams, Dataset, NeuronLabeler)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let train = SynthDigits.generate(40, 1);
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(24).with_timesteps(30));
        net.train_epoch(&train, 3);
        apply_storage_precision(&mut net);
        let params = net.into_params();
        let test = SynthDigits.generate(23, 2);
        let labeler = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .label_neurons(&params, &test, 4);
        (params, test, labeler)
    })
}

#[test]
fn issue_batch_sizes_are_bit_identical_to_scalar() {
    let (params, test, labeler) = fixture();
    let scalar_eval = BatchEvaluator::with_threads(1).with_batch(1);
    let counts_ref = scalar_eval.spike_counts(params, test, 7);
    let accuracy_ref = scalar_eval.evaluate(params, test, labeler, 7);
    // Tile widths straddle the fixture's n = 24: ragged tails (7, 23),
    // exact fit (24) and the single-tile clamp (usize::MAX).
    for batch in [1usize, 3, 8, 17] {
        for threads in [1usize, 2, 5] {
            for tile in [1usize, 7, 23, 24, usize::MAX] {
                let eval = BatchEvaluator::with_threads(threads)
                    .with_batch(batch)
                    .with_tile(tile);
                assert_eq!(
                    eval.spike_counts(params, test, 7),
                    counts_ref,
                    "spike counts diverged at batch={batch} threads={threads} tile={tile}"
                );
                assert_eq!(
                    eval.evaluate(params, test, labeler, 7),
                    accuracy_ref,
                    "accuracy diverged at batch={batch} threads={threads} tile={tile}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn arbitrary_batch_and_thread_counts_match_scalar(
        batch in 1usize..32,
        threads in 1usize..6,
        tile in 1usize..40,
        kernel_idx in 0usize..3,
        intra_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let kernel = [KernelChoice::Scalar, KernelChoice::Auto, KernelChoice::Avx2][kernel_idx];
        let intra = [
            IntraChoice::Off,
            IntraChoice::Auto,
            IntraChoice::Workers(2),
            IntraChoice::Workers(3),
        ][intra_idx];
        let (params, test, labeler) = fixture();
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar);
        let batched = BatchEvaluator::with_threads(threads)
            .with_batch(batch)
            .with_tile(tile)
            .with_kernel(kernel)
            .with_intra(intra);
        prop_assert_eq!(
            batched.spike_counts(params, test, seed),
            scalar.spike_counts(params, test, seed)
        );
        prop_assert_eq!(
            batched.evaluate(params, test, labeler, seed),
            scalar.evaluate(params, test, labeler, seed)
        );
        let batched_labels = batched.label_neurons(params, test, seed);
        let scalar_labels = scalar.label_neurons(params, test, seed);
        prop_assert_eq!(batched_labels.assignments(), scalar_labels.assignments());
    }
}
