//! Cross-crate integration: the full SparkXD pipeline against the paper's
//! headline claims, at smoke scale.

use sparkxd::circuit::Volt;
use sparkxd::core::pipeline::{DatasetKind, PipelineConfig, SparkXdPipeline};

fn demo_outcome(seed: u64) -> sparkxd::core::pipeline::PipelineOutcome {
    SparkXdPipeline::new(PipelineConfig::small_demo(seed))
        .run()
        .expect("pipeline completes")
}

#[test]
fn energy_saving_in_paper_band_at_lowest_voltage() {
    let outcome = demo_outcome(42);
    // Paper: ~40% average DRAM energy saving at 1.025 V.
    let saving = outcome.energy.saving_fraction_vs_baseline();
    assert!(
        (0.25..0.50).contains(&saving),
        "saving {saving} outside the paper band"
    );
}

#[test]
fn throughput_is_maintained() {
    let outcome = demo_outcome(42);
    // Paper: 1.02x average speed-up; at minimum, no meaningful loss.
    assert!(
        outcome.energy.speedup() > 0.95,
        "speedup {}",
        outcome.energy.speedup()
    );
}

#[test]
fn mapping_respects_tolerance_threshold() {
    let outcome = demo_outcome(42);
    assert_eq!(outcome.mapping.policy, "sparkxd");
    // Only a strict subset of subarrays qualifies at the threshold.
    assert!(outcome.mapping.safe_fraction > 0.0 && outcome.mapping.safe_fraction < 1.0);
    // The image fits: N40 -> 784*40 words / 4 per column.
    assert_eq!(outcome.mapping.columns, 784 * 40 / 4);
}

#[test]
fn operating_voltage_never_exceeds_tolerance() {
    let outcome = demo_outcome(42);
    assert!(
        outcome.operating_ber <= outcome.max_tolerable_ber * (1.0 + 1e-9),
        "operating BER {} must not exceed BER_th {}",
        outcome.operating_ber,
        outcome.max_tolerable_ber
    );
    // And the operating voltage stays in the modelled range.
    assert!(outcome.operating_voltage.0 >= 1.0 && outcome.operating_voltage.0 <= 1.35);
}

#[test]
fn different_device_seeds_change_mapping_not_energy_band() {
    use sparkxd::dram::DramGeometry;
    use sparkxd::error::WeakCellMap;
    // Different weak-cell maps -> different safe-subarray sets.
    let g = DramGeometry::lpddr3_1600_4gb();
    let safe = |seed: u64| {
        WeakCellMap::generate(&g, seed)
            .profile(1e-3)
            .safe_subarrays(1e-3)
    };
    assert_ne!(
        safe(1),
        safe(2),
        "distinct devices should salvage different subarrays"
    );
    // The energy saving tracks the operating voltage the model could
    // tolerate: a lower operating voltage must never save less.
    let a = demo_outcome(1);
    let b = demo_outcome(2);
    let (sa, sb) = (
        a.energy.saving_fraction_vs_baseline(),
        b.energy.saving_fraction_vs_baseline(),
    );
    assert!((0.05..0.50).contains(&sa), "saving {sa} out of sane band");
    assert!((0.05..0.50).contains(&sb), "saving {sb} out of sane band");
    if a.operating_voltage.0 < b.operating_voltage.0 {
        assert!(sa >= sb, "lower voltage must save at least as much");
    } else if b.operating_voltage.0 < a.operating_voltage.0 {
        assert!(sb >= sa, "lower voltage must save at least as much");
    }
}

#[test]
fn fashion_dataset_also_completes() {
    let mut config = PipelineConfig::small_demo(9);
    config.dataset = DatasetKind::Fashion;
    let outcome = SparkXdPipeline::new(config)
        .run()
        .expect("fashion pipeline");
    assert!(outcome.energy.saving_fraction_vs_baseline() > 0.2);
}

#[test]
fn requested_voltage_is_respected_when_tolerable() {
    let outcome = demo_outcome(42);
    if outcome.max_tolerable_ber >= outcome.operating_ber && outcome.target_met {
        // The demo requests 1.025 V; with BER_th = 1e-3 the device BER
        // (1e-3) fits, so no voltage raise should occur.
        assert_eq!(outcome.operating_voltage, Volt(1.025));
    }
}
