//! Determinism guarantees the whole reproduction leans on: every run is a
//! pure function of its seeds. Same seed ⇒ bit-identical `PipelineOutcome`
//! (f64-exact, via the derived `PartialEq`); different seeds ⇒ different
//! device instances (weak-cell maps) and different datasets.

use sparkxd::core::pipeline::{PipelineConfig, PipelineOutcome, SparkXdPipeline};
use sparkxd::data::{SynthDigits, SyntheticSource};
use sparkxd::dram::DramGeometry;
use sparkxd::error::WeakCellMap;

/// A config trimmed below `small_demo` so this file re-runs the full
/// pipeline several times in seconds.
fn tiny_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        neurons: 20,
        timesteps: 20,
        train_samples: 40,
        test_samples: 20,
        baseline_epochs: 1,
        ..PipelineConfig::small_demo(seed)
    }
}

fn run(seed: u64) -> PipelineOutcome {
    SparkXdPipeline::new(tiny_config(seed))
        .run()
        .expect("tiny pipeline run")
}

#[test]
fn same_seed_gives_bit_identical_outcomes() {
    let first = run(42);
    let second = run(42);
    // Derived PartialEq compares every f64 exactly — any nondeterminism
    // (iteration-order, uninitialised state, time-dependent seeding)
    // shows up as an inequality here.
    assert_eq!(first, second);
}

#[test]
fn different_seeds_give_different_outcomes() {
    let a = run(1);
    let b = run(2);
    // The device seed changes the weak-cell map and the data seed changes
    // the dataset, so at least the measured accuracies should move.
    assert_ne!(a, b, "distinct seeds produced identical outcomes");
}

#[test]
fn weak_cell_maps_identical_for_same_seed() {
    let g = DramGeometry::lpddr3_1600_4gb();
    let a = WeakCellMap::generate(&g, 7);
    let b = WeakCellMap::generate(&g, 7);
    assert_eq!(a.multipliers(), b.multipliers());
}

#[test]
fn weak_cell_maps_differ_across_seeds() {
    let g = DramGeometry::lpddr3_1600_4gb();
    let a = WeakCellMap::generate(&g, 7);
    let b = WeakCellMap::generate(&g, 8);
    assert_ne!(
        a.multipliers(),
        b.multipliers(),
        "device seeds must produce distinct weak-cell maps"
    );
    // And not merely a permutation-level tweak: a decent fraction of
    // subarrays should have moved.
    let moved = a
        .multipliers()
        .iter()
        .zip(b.multipliers())
        .filter(|(x, y)| x != y)
        .count();
    assert!(
        moved * 2 > a.multipliers().len(),
        "only {moved}/{} subarray multipliers changed",
        a.multipliers().len()
    );
}

#[test]
fn datasets_deterministic_per_seed() {
    let a = SynthDigits.generate(25, 3);
    let b = SynthDigits.generate(25, 3);
    let c = SynthDigits.generate(25, 4);
    for i in 0..a.len() {
        let (ia, la) = a.get(i);
        let (ib, lb) = b.get(i);
        assert_eq!(la, lb);
        assert_eq!(ia.pixels(), ib.pixels(), "image {i} differs across runs");
    }
    let any_differs = (0..a.len()).any(|i| a.get(i).0.pixels() != c.get(i).0.pixels());
    assert!(any_differs, "seeds 3 and 4 generated identical datasets");
}
