//! Cross-crate consistency checks between the circuit, DRAM, energy and
//! error substrates.

use sparkxd::circuit::{BitlineModel, TimingTable, Volt};
use sparkxd::core::mapping::{BaselineMapping, MappingPolicy, SparkXdMapping};
use sparkxd::dram::{AccessTrace, DramConfig, DramModel};
use sparkxd::energy::EnergyModel;
use sparkxd::error::{BerCurve, ErrorProfile, WeakCellMap};

#[test]
fn circuit_timings_flow_into_dram_configs() {
    let table = TimingTable::paper_operating_points(&BitlineModel::lpddr3()).unwrap();
    let configs = DramConfig::from_timing_table(&table);
    assert_eq!(configs.len(), 6);
    // Monotone: lower voltage -> slower core timing -> bigger slowdown.
    for w in configs.windows(2) {
        assert!(w[1].core_slowdown() > w[0].core_slowdown());
        assert!(w[1].v_supply.0 < w[0].v_supply.0);
    }
}

#[test]
fn energy_per_access_consistent_with_trace_pricing() {
    // Price a pure-hit trace two ways: per-access energy x count, and the
    // full trace model minus activation/background overheads.
    let config = DramConfig::lpddr3_1600_4gb();
    let n = 1024;
    let trace = AccessTrace::sequential_reads(&config.geometry, n);
    let out = DramModel::new(config.clone()).replay(&trace);
    let model = EnergyModel::for_config(&config);
    let breakdown = model.trace_energy(&out.stats, &out.latency);
    let expected_reads = model.read_energy_nj() * n as f64;
    assert!((breakdown.read_nj - expected_reads).abs() < 1e-6);
    // ACT energy appears once per opened row.
    let rows_opened = out.stats.activates();
    assert!((breakdown.act_nj - model.act_energy_nj() * rows_opened as f64).abs() < 1e-6);
}

#[test]
fn ber_curve_and_weak_cells_compose_into_capacity() {
    let geometry = DramConfig::lpddr3_1600_4gb().geometry;
    let curve = BerCurve::paper_default();
    let weak = WeakCellMap::generate(&geometry, 11);
    // At the lowest paper voltage, roughly half the subarrays sit at or
    // below the device-level base rate (log-normal median 1.0).
    let profile = weak.profile(curve.ber_at(Volt(1.025)));
    let frac = profile.safe_fraction(curve.ber_at(Volt(1.025)));
    assert!(
        (0.35..0.65).contains(&frac),
        "safe fraction {frac} should straddle the median"
    );
}

#[test]
fn sparkxd_mapping_beats_baseline_on_unsafe_devices() {
    // On a device where some subarrays are bad, the baseline mapping lands
    // words in unsafe subarrays while SparkXD avoids them entirely.
    let geometry = DramConfig::lpddr3_1600_4gb().geometry;
    let weak = WeakCellMap::generate(&geometry, 5);
    let profile = weak.profile(1e-4);
    let threshold = 1e-4;
    let n_columns = 20_000;
    let baseline = BaselineMapping
        .map(n_columns, &geometry, &profile, f64::MAX)
        .unwrap();
    let spark = SparkXdMapping
        .map(n_columns, &geometry, &profile, threshold)
        .unwrap();
    let unsafe_hits = |m: &sparkxd::core::mapping::Mapping| {
        m.columns()
            .iter()
            .filter(|c| profile.ber(geometry.subarray_id(c)) > threshold)
            .count()
    };
    assert!(
        unsafe_hits(&baseline) > 0,
        "baseline should hit unsafe subarrays"
    );
    assert_eq!(
        unsafe_hits(&spark),
        0,
        "sparkxd must avoid unsafe subarrays"
    );
}

#[test]
fn mapping_energy_is_within_few_percent_of_baseline_layout() {
    // SparkXD's safe-subarray striping must not cost meaningful energy vs
    // the sequential baseline at equal voltage (the saving comes from the
    // voltage, not the layout).
    let config = DramConfig::lpddr3_1600_4gb();
    let profile = ErrorProfile::uniform(1e-4, config.geometry.total_subarrays());
    let n_columns = 20_000;
    let base_map = BaselineMapping
        .map(n_columns, &config.geometry, &profile, f64::MAX)
        .unwrap();
    let spark_map = SparkXdMapping
        .map(n_columns, &config.geometry, &profile, 1e-3)
        .unwrap();
    let model = EnergyModel::for_config(&config);
    let price = |m: &sparkxd::core::mapping::Mapping| {
        let out = DramModel::new(config.clone()).replay_compressed(&m.read_trace());
        model.trace_energy(&out.stats, &out.latency).total_nj()
    };
    let (e_base, e_spark) = (price(&base_map), price(&spark_map));
    assert!(
        (e_spark / e_base - 1.0).abs() < 0.05,
        "layout energy delta too large: {e_base} vs {e_spark}"
    );
}

#[test]
fn compressed_replay_matches_per_access_on_mapped_traces() {
    // The energy evaluator prices mappings through the batch replay path;
    // check against the per-access oracle on a real mapped weight image at
    // full device scale (nominal timings are exactly representable, so the
    // two paths must agree bit for bit).
    let config = DramConfig::lpddr3_1600_4gb();
    let profile = ErrorProfile::uniform(1e-4, config.geometry.total_subarrays());
    for mapping in [
        BaselineMapping
            .map(20_000, &config.geometry, &profile, f64::MAX)
            .unwrap(),
        SparkXdMapping
            .map(20_000, &config.geometry, &profile, 1e-3)
            .unwrap(),
    ] {
        let compressed = mapping.read_trace();
        let per_access = DramModel::new(config.clone()).replay(&compressed.expand());
        let batch = DramModel::new(config.clone()).replay_compressed(&compressed);
        assert_eq!(per_access, batch, "policy {}", mapping.policy());
    }
}

#[test]
fn packed_images_replay_proportionally_cheaper_traces() {
    // Traffic consistency across snn/core/dram/energy: an int8 N400 image
    // maps to a quarter of the FP32 columns, and its trace replays for a
    // quarter-ish of the energy (row-activation overhead shifts the ratio
    // by at most a few percent). A bytes-per-word mismatch anywhere in
    // mapping or trace generation breaks the proportion immediately.
    use sparkxd::core::energy_eval::EnergyEvaluation;
    use sparkxd::core::trace_gen::columns_for_words;
    use sparkxd::snn::WeightPrecision;
    let config = DramConfig::lpddr3_1600_4gb();
    let flat = ErrorProfile::uniform(0.0, config.geometry.total_subarrays());
    let pass = |precision: WeightPrecision| {
        let n_columns = columns_for_words(784 * 400, config.geometry.col_bytes, precision);
        let mapping = BaselineMapping
            .map(n_columns, &config.geometry, &flat, f64::MAX)
            .unwrap()
            .with_precision(precision);
        (n_columns, EnergyEvaluation::evaluate(&config, &mapping))
    };
    let (cols_f32, pass_f32) = pass(WeightPrecision::Fp32);
    let (cols_i16, pass_i16) = pass(WeightPrecision::Int16);
    let (cols_i8, pass_i8) = pass(WeightPrecision::Int8);
    assert_eq!(cols_f32, 78_400);
    assert_eq!(cols_i16 * 2, cols_f32);
    assert_eq!(cols_i8 * 4, cols_f32);
    assert!(pass_i8.total_mj() < pass_i16.total_mj());
    assert!(pass_i16.total_mj() < pass_f32.total_mj());
    let ratio = pass_i8.total_mj() / pass_f32.total_mj();
    assert!(
        (0.2..0.3).contains(&ratio),
        "int8 pass should cost about a quarter of FP32, got {ratio}"
    );
    assert!(pass_i8.runtime_ns() < pass_f32.runtime_ns());
}

#[test]
fn voltage_sweep_monotone_through_the_full_stack() {
    // End-to-end: lower voltage => lower energy, slower core timing,
    // higher BER — all three substrates agreeing.
    let mut previous_energy = f64::INFINITY;
    let mut previous_ber = -1.0;
    let mut previous_slowdown = 0.0;
    let curve = BerCurve::paper_default();
    for v in [1.325, 1.25, 1.175, 1.1, 1.025] {
        let config = DramConfig::approximate(Volt(v)).unwrap();
        let energy = EnergyModel::for_config(&config).access_energy().miss_nj;
        let ber = curve.ber_at(Volt(v));
        let slowdown = config.core_slowdown();
        assert!(energy < previous_energy);
        assert!(ber > previous_ber);
        assert!(slowdown > previous_slowdown);
        previous_energy = energy;
        previous_ber = ber;
        previous_slowdown = slowdown;
    }
}
