//! Property tests for the intra-chunk parallel tile sweep: `run_batch`
//! may fan the zero → accumulate → integrate phase of each timestep out
//! across pool workers (`SPARKXD_INTRA` / `BatchState::with_intra`), with
//! every worker owning a contiguous range of tiles — disjoint neuron
//! lanes of the `[B × n]` drive slab — and a barrier before the global
//! firing-commit/inhibition pass. The split must never change a result:
//! spike counts, labels, accuracy and per-lane membrane words stay
//! bit-identical to the serial sweep for **any** worker count.
//!
//! Why bit-identity holds by construction: range jobs split on *tile*
//! boundaries, so each lane sees the same merged rows added in the same
//! ascending order as the serial sweep, and per-job `any_crossed` slots
//! are OR-reduced in job order after the barrier. These tests exist to
//! catch regressions of exactly that construction — a split mid-tile, a
//! racy reduction, a lane range off by one at a worker boundary.
//!
//! Mirrors `tile_invariance.rs`: intra/tile/batch/thread/kernel pinning
//! goes through the `BatchEvaluator`/`BatchState` APIs rather than the
//! process-global environment, so these tests can run concurrently.
//! (`thread_invariance.rs` owns the env-var axis.)

use proptest::prelude::*;
use rand::rngs::StdRng;
use sparkxd::data::{Dataset, SynthDigits, SyntheticSource};
use sparkxd::snn::engine::{sample_rng, BatchEvaluator};
use sparkxd::snn::{
    BatchState, DiehlCookNetwork, IntraChoice, KernelChoice, NetworkParams, QuantizedImage,
    RunState, SnnConfig, WeightPrecision,
};
use std::sync::OnceLock;

/// Applies the CI storage knob: with `SPARKXD_PRECISION=int8|int16` set,
/// the trained weights are replaced by their packed-image round-trip, so
/// the whole invariance matrix runs on the quantised weight substrate
/// (the corrupt words are planted afterwards and survive untouched).
fn apply_storage_precision(net: &mut DiehlCookNetwork) {
    let precision = WeightPrecision::from_env();
    if precision.is_quantized() {
        net.set_weights(QuantizedImage::roundtrip(net.weights(), precision));
    }
}

/// A trained network at `n_neurons = 23` — prime, so no tile width in
/// `2..23` divides it, every multi-tile sweep ends on a ragged tail tile,
/// and no (tile, intra) pair splits the lane axis evenly — with
/// hand-planted corruption: adjacent dead rows against the merged member
/// lists, NaN/Inf on interior and last lanes, a negative word for the
/// read clamp. The same adversarial fixture as `tile_invariance.rs`, so
/// a sweep-split bug faces the same worst-case inputs the tiling did.
fn fixture() -> &'static (NetworkParams, Dataset) {
    static FIXTURE: OnceLock<(NetworkParams, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let train = SynthDigits.generate(30, 1);
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(23).with_timesteps(30));
        net.train_epoch(&train, 3);
        apply_storage_precision(&mut net);
        net.with_weights_mut(|w| {
            for j in 0..23 {
                w.set(40, j, 0.0); // dead row in the active band
                w.set(41, j, 0.0); // two adjacent dead rows
            }
            w.set(42, 3, f32::NAN);
            w.set(42, 22, f32::INFINITY); // corrupt word on the last lane
            w.set(43, 0, -2.0);
        });
        (net.into_params(), SynthDigits.generate(13, 2))
    })
}

/// Per-sample scalar reference counts: one `run_sample` per image — the
/// unchanged oracle every batched/tiled/intra path must reproduce.
fn scalar_counts(params: &NetworkParams, data: &Dataset, seed: u64) -> Vec<Vec<u32>> {
    let mut state = RunState::for_params(params);
    (0..data.len())
        .map(|idx| {
            let mut rng = sample_rng(seed, idx as u64);
            params
                .run_sample(&mut state, data.get(idx).0.pixels(), &mut rng)
                .unwrap()
        })
        .collect()
}

/// Batched counts at one (intra, kernel, batch, tile) point.
fn intra_counts(
    params: &NetworkParams,
    data: &Dataset,
    seed: u64,
    intra: IntraChoice,
    kernel: KernelChoice,
    batch: usize,
    tile: usize,
) -> Vec<Vec<u32>> {
    let mut state = BatchState::for_params(params, batch)
        .with_tile(tile)
        .with_kernel(kernel)
        .with_intra(intra);
    let mut got = Vec::with_capacity(data.len());
    let mut start = 0;
    while start < data.len() {
        let end = (start + batch).min(data.len());
        let pixels: Vec<&[f32]> = (start..end).map(|i| data.get(i).0.pixels()).collect();
        let mut rngs: Vec<StdRng> = (start..end).map(|i| sample_rng(seed, i as u64)).collect();
        got.extend(params.run_batch(&mut state, &pixels, &mut rngs).unwrap());
        start = end;
    }
    got
}

#[test]
fn issue_intra_matrix_is_bit_identical_to_scalar_reference() {
    let (params, data) = fixture();
    let reference = scalar_counts(params, data, 31);
    // Workers(2/3/5) force real multi-worker splits regardless of host
    // cores (explicit pins oversubscribe deliberately, like
    // SPARKXD_THREADS); Auto exercises the budget-sized path — which may
    // resolve to the serial sweep on small hosts, itself a point worth
    // pinning. Tile widths reuse the boundary shapes of
    // `tile_invariance.rs`: at tile=1 each of 23 tiles is one lane, so
    // Workers(5) puts worker boundaries *inside* what a single tile
    // covers at any wider setting.
    for intra in [
        IntraChoice::Off,
        IntraChoice::Auto,
        IntraChoice::Workers(2),
        IntraChoice::Workers(3),
        IntraChoice::Workers(5),
    ] {
        for kernel in [KernelChoice::Scalar, KernelChoice::Auto] {
            for tile in [1usize, 5, 9, 23, usize::MAX] {
                for batch in [2usize, 13] {
                    assert_eq!(
                        intra_counts(params, data, 31, intra, kernel, batch, tile),
                        reference,
                        "intra={intra:?} kernel={} tile={tile} batch={batch}",
                        kernel.name()
                    );
                }
            }
        }
    }
}

#[test]
fn hard_wta_winner_is_resolved_across_worker_boundaries() {
    // Hard WTA picks one global winner per timestep. With tile width 1
    // and four workers over 17 single-lane tiles, the candidates of one
    // timestep span every worker's range — any per-worker shortcut in
    // the winner reduction, or a commit that ran before the barrier,
    // diverges here.
    let mut config = SnnConfig::for_neurons(17).with_timesteps(25);
    config.hard_wta = true;
    let params = NetworkParams::new(config);
    let data = SynthDigits.generate(7, 5);
    let reference = scalar_counts(&params, &data, 9);
    let total: u32 = reference.iter().flatten().sum();
    assert!(total > 0, "hard-WTA fixture must actually spike");
    for intra in [
        IntraChoice::Workers(2),
        IntraChoice::Workers(4),
        IntraChoice::Workers(17),
    ] {
        for tile in [1usize, 2, 16] {
            assert_eq!(
                intra_counts(&params, &data, 9, intra, KernelChoice::Auto, 4, tile),
                reference,
                "intra={intra:?} tile={tile}"
            );
        }
    }
}

#[test]
fn membrane_words_are_bit_identical_lane_by_lane() {
    // Spike counts could in principle agree while membrane trajectories
    // drift (counts quantise). Compare the evaluate() accuracy — an f64
    // computed from every per-sample outcome — at full bit precision,
    // plus labels, across the intra axis driven through the evaluator
    // stack (which also layers chunk sharding on top of the sweep).
    let (params, data) = fixture();
    let scalar = BatchEvaluator::with_threads(1)
        .with_batch(1)
        .with_kernel(KernelChoice::Scalar)
        .with_intra(IntraChoice::Off);
    let labels_ref = scalar.label_neurons(params, data, 5);
    let accuracy_ref = scalar.evaluate(params, data, &labels_ref, 5);
    for intra in [
        IntraChoice::Auto,
        IntraChoice::Workers(2),
        IntraChoice::Workers(7),
    ] {
        let eval = BatchEvaluator::with_threads(2)
            .with_batch(5)
            .with_tile(4)
            .with_intra(intra);
        let labels = eval.label_neurons(params, data, 5);
        assert_eq!(labels.assignments(), labels_ref.assignments(), "{intra:?}");
        let accuracy = eval.evaluate(params, data, &labels_ref, 5);
        assert_eq!(
            accuracy.to_bits(),
            accuracy_ref.to_bits(),
            "accuracy diverged under {intra:?}: {accuracy} vs {accuracy_ref}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (intra, kernel, batch, thread, tile, seed) point — the full
    /// five-axis matrix from the issue, driven through the complete
    /// `BatchEvaluator` sharding stack — matches the scalar serial path.
    #[test]
    fn arbitrary_intra_points_match_scalar(
        intra_idx in 0usize..5,
        kernel_idx in 0usize..3,
        batch in 1usize..12,
        threads in 1usize..5,
        tile in 1usize..40,
        seed in 0u64..1000,
    ) {
        let intra = [
            IntraChoice::Off,
            IntraChoice::Auto,
            IntraChoice::Workers(2),
            IntraChoice::Workers(3),
            IntraChoice::Workers(6),
        ][intra_idx];
        let kernel = [KernelChoice::Scalar, KernelChoice::Auto, KernelChoice::Avx2][kernel_idx];
        let (params, data) = fixture();
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar)
            .with_intra(IntraChoice::Off);
        let split = BatchEvaluator::with_threads(threads)
            .with_batch(batch)
            .with_tile(tile)
            .with_kernel(kernel)
            .with_intra(intra);
        prop_assert_eq!(
            split.spike_counts(params, data, seed),
            scalar.spike_counts(params, data, seed)
        );
        let scalar_labels = scalar.label_neurons(params, data, seed);
        let split_labels = split.label_neurons(params, data, seed);
        prop_assert_eq!(split_labels.assignments(), scalar_labels.assignments());
        prop_assert_eq!(
            split.evaluate(params, data, &scalar_labels, seed),
            scalar.evaluate(params, data, &scalar_labels, seed)
        );
    }
}
