//! Spans-mode acceptance: one tiny pipeline run in `SPARKXD_TELEMETRY=spans`
//! mode must produce a loadable Chrome trace-event file covering all
//! seven pipeline stage spans plus at least one `WorkerPool` dispatch
//! span and one DRAM replay span beneath them.
//!
//! Single `#[test]` on purpose: the telemetry mode is process-global,
//! like the engine knobs the sibling invariance suites pin.

use sparkxd::core::pipeline::{PipelineConfig, SparkXdPipeline};
use sparkxd::telemetry;

/// The tiny config the invariance suites use (seconds, not minutes).
fn tiny_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        neurons: 20,
        timesteps: 20,
        train_samples: 40,
        test_samples: 20,
        baseline_epochs: 1,
        ..PipelineConfig::small_demo(seed)
    }
}

#[test]
fn spans_mode_pipeline_run_yields_a_loadable_chrome_trace() {
    // Two engine workers so at least one dispatch takes the pooled path
    // (the single-worker fast path is deliberately un-instrumented).
    std::env::set_var("SPARKXD_THREADS", "2");
    telemetry::set_mode(telemetry::Mode::Spans);
    SparkXdPipeline::new(tiny_config(42))
        .run()
        .expect("tiny pipeline run");
    std::env::remove_var("SPARKXD_THREADS");

    let path = std::env::temp_dir().join(format!("sparkxd_trace_{}.json", std::process::id()));
    let written = telemetry::write_chrome_trace(&path).expect("trace file written");
    assert!(written > 0, "spans mode must buffer events");
    let trace = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);

    // Loadable: the trace-event envelope with balanced nesting (the
    // renderer emits no strings containing braces or brackets).
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
    assert!(trace.contains("\"traceEvents\":["));
    assert_eq!(
        trace.matches(['{', '[']).count(),
        trace.matches(['}', ']']).count(),
        "unbalanced trace JSON"
    );

    // Coverage: every pipeline stage, plus the pool and DRAM replay
    // spans the stages fan out into.
    for span in [
        "pipeline.data",
        "pipeline.baseline_model",
        "pipeline.fault_aware_training",
        "pipeline.operating_point",
        "pipeline.mapping",
        "pipeline.operating_accuracy",
        "pipeline.energy",
        "pool.run",
        "dram.replay",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{span}\"")),
            "trace is missing the {span} span"
        );
    }
}
