//! Property tests for the runtime-dispatched kernel layer: every kernel
//! in [`Kernel::available()`] must produce **bit-identical** results —
//! at the single-call level (drive accumulate, LIF lane update,
//! inhibition sweep) and through the full `BatchEvaluator` stack — to
//! the portable scalar kernel, for any weight contents (NaN, ±Inf,
//! negatives, denormals, signed zero), any dead-row pattern, and every
//! tail alignment `n % 8 ∈ {0..7}` the 8-lane AVX2 bodies can mishandle.
//!
//! Mirrors `tile_invariance.rs`: kernel pinning goes through the
//! `BatchEvaluator::with_kernel` / `BatchState::with_kernel` APIs rather
//! than the process-global `SPARKXD_KERNEL`, so these tests can run
//! concurrently. (`thread_invariance.rs` owns the env-var axis.)

use proptest::prelude::*;
use rand::rngs::StdRng;
use sparkxd::data::{Dataset, SynthDigits, SyntheticSource};
use sparkxd::snn::engine::{sample_rng, BatchEvaluator};
use sparkxd::snn::kernels::LifLanes;
use sparkxd::snn::{
    BatchState, DiehlCookNetwork, IntraChoice, Kernel, KernelChoice, LifConfig, NetworkParams,
    QuantizedImage, RunState, SnnConfig, WeightPrecision,
};
use std::sync::OnceLock;

/// A bank of adversarial f32 words: quiet NaN, both infinities, signed
/// zeros, denormals, large finite magnitudes and ordinary negatives.
/// Indexed cyclically so any `(len, phase)` pair lands every species on
/// every lane position of an 8-wide chunk *and* of the scalar tail.
const NASTY: [f32; 16] = [
    0.0,
    -0.0,
    1.0,
    -2.0,
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    1.5e-41,  // positive denormal
    -7.0e-42, // negative denormal
    3.4e38,
    -3.4e38,
    0.015625,
    -65.0,
    1.0e-3,
    f32::MIN_POSITIVE,
    -f32::MIN_POSITIVE,
];

fn nasty_vec(len: usize, phase: usize) -> Vec<f32> {
    (0..len).map(|i| NASTY[(i + phase) % NASTY.len()]).collect()
}

/// Membrane-flavoured lane values (around rest, plus the same corrupt
/// species) for the LIF / inhibition entry points.
fn membrane_vec(len: usize, phase: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let w = NASTY[(i + phase) % NASTY.len()];
            if w.is_finite() {
                -65.0 + w.clamp(-30.0, 30.0)
            } else {
                w
            }
        })
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: lane {i} diverged ({g:?} vs {w:?})"
        );
    }
}

/// Runs every available kernel's five entry points against the scalar
/// kernel on identical inputs and demands bitwise agreement. `len`
/// sweeps all tail alignments; `phase` rotates which nasty word lands
/// on which lane.
fn check_kernels_agree(len: usize, phase: usize) {
    let lif = LifConfig::excitatory();
    let row = nasty_vec(len, phase);
    let drive0 = nasty_vec(len, phase.wrapping_add(5));
    for &kernel in Kernel::available() {
        if kernel == Kernel::Scalar {
            continue;
        }
        // clamp_reads effective-weight transform.
        let mut a = drive0.clone();
        let mut b = drive0.clone();
        Kernel::Scalar.accumulate_effective(&mut a, &row, 1.0);
        kernel.accumulate_effective(&mut b, &row, 1.0);
        assert_bits_eq(&b, &a, "accumulate_effective");
        // Finite-filter path.
        let mut a = drive0.clone();
        let mut b = drive0.clone();
        Kernel::Scalar.accumulate_finite(&mut a, &row);
        kernel.accumulate_finite(&mut b, &row);
        assert_bits_eq(&b, &a, "accumulate_finite");
        // Fused multi-member accumulate: 3 members in a stride-`len`+3 slab.
        let stride = len + 3;
        let members = [0usize, 1, 2];
        let mut a: Vec<f32> = (0..3 * stride)
            .map(|i| NASTY[(i + phase) % NASTY.len()])
            .collect();
        let mut b = a.clone();
        Kernel::Scalar.accumulate_members(&mut a, stride, 0, &members, &row);
        kernel.accumulate_members(&mut b, stride, 0, &members, &row);
        assert_bits_eq(&b, &a, "accumulate_members");
        // Branch-free LIF lane update.
        let run = |k: Kernel| {
            let mut v = membrane_vec(len, phase);
            let mut theta: Vec<f32> = (0..len).map(|i| (i % 5) as f32 * 0.05).collect();
            let mut refrac: Vec<f32> = (0..len)
                .map(|i| if i % 3 == 0 { 2.0 } else { 0.0 })
                .collect();
            let drive = nasty_vec(len, phase.wrapping_add(9));
            let mut crossed = vec![false; len];
            let any = k.integrate_lanes(
                &lif,
                1.0,
                LifLanes {
                    v: &mut v,
                    theta: &mut theta,
                    refractory: &mut refrac,
                    drive: &drive,
                    crossed: &mut crossed,
                },
            );
            (v, theta, refrac, crossed, any)
        };
        let (va, ta, ra, ca, anya) = run(Kernel::Scalar);
        let (vb, tb, rb, cb, anyb) = run(kernel);
        assert_bits_eq(&vb, &va, "integrate_lanes v");
        assert_bits_eq(&tb, &ta, "integrate_lanes theta");
        assert_bits_eq(&rb, &ra, "integrate_lanes refractory");
        assert_eq!(cb, ca, "integrate_lanes crossed");
        assert_eq!(anyb, anya, "integrate_lanes any-crossed");
        // Inhibition sweep (floor is finite by construction).
        let mut a = membrane_vec(len, phase);
        let mut b = a.clone();
        Kernel::Scalar.inhibit_lanes(&mut a, 7.5, lif.inhibition_floor());
        kernel.inhibit_lanes(&mut b, 7.5, lif.inhibition_floor());
        assert_bits_eq(&b, &a, "inhibit_lanes");
    }
}

#[test]
fn issue_every_tail_alignment_is_bit_identical_across_kernels() {
    // 0..=23 covers each residue n % 8 three times, with the nasty bank
    // rotated so NaN/Inf/denormal words visit every lane of the 8-wide
    // body and every position of the scalar tail.
    for len in 0..=23 {
        for phase in 0..NASTY.len() {
            check_kernels_agree(len, phase);
        }
    }
}

/// Applies the CI storage knob: with `SPARKXD_PRECISION=int8|int16` set,
/// the trained weights are replaced by their packed-image round-trip, so
/// the whole invariance matrix runs on the quantised weight substrate
/// (the corrupt words are planted afterwards and survive untouched).
fn apply_storage_precision(net: &mut DiehlCookNetwork) {
    let precision = WeightPrecision::from_env();
    if precision.is_quantized() {
        net.set_weights(QuantizedImage::roundtrip(net.weights(), precision));
    }
}

/// A trained network at `n_neurons = 23` (prime: every multi-tile sweep
/// ends on a ragged tail, and 23 % 8 = 7 exercises the widest SIMD tail)
/// with hand-planted corruption: adjacent dead rows against the merged
/// member lists, NaN/Inf on interior and last lanes, a negative word for
/// the clamp, and a denormal for the effective-weight transform.
fn fixture() -> &'static (NetworkParams, Dataset) {
    static FIXTURE: OnceLock<(NetworkParams, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let train = SynthDigits.generate(30, 1);
        let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(23).with_timesteps(30));
        net.train_epoch(&train, 3);
        apply_storage_precision(&mut net);
        net.with_weights_mut(|w| {
            for j in 0..23 {
                w.set(40, j, 0.0); // dead row in the active band
                w.set(41, j, 0.0); // two adjacent dead rows
            }
            w.set(42, 3, f32::NAN);
            w.set(42, 22, f32::INFINITY); // corrupt word on the last lane
            w.set(43, 0, -2.0);
            w.set(43, 7, 1.5e-41); // denormal on an 8-lane boundary
        });
        (net.into_params(), SynthDigits.generate(13, 2))
    })
}

/// Per-sample scalar reference counts on the pinned portable kernel —
/// the unchanged `run_sample` oracle.
fn scalar_counts(params: &NetworkParams, data: &Dataset, seed: u64) -> Vec<Vec<u32>> {
    let mut state = RunState::for_params(params).with_kernel(KernelChoice::Scalar);
    (0..data.len())
        .map(|idx| {
            let mut rng = sample_rng(seed, idx as u64);
            params
                .run_sample(&mut state, data.get(idx).0.pixels(), &mut rng)
                .unwrap()
        })
        .collect()
}

/// Batched counts at one (kernel, batch, tile) point.
fn batched_counts(
    params: &NetworkParams,
    data: &Dataset,
    seed: u64,
    choice: KernelChoice,
    batch: usize,
    tile: usize,
) -> Vec<Vec<u32>> {
    let mut state = BatchState::for_params(params, batch)
        .with_tile(tile)
        .with_kernel(choice);
    let mut got = Vec::with_capacity(data.len());
    let mut start = 0;
    while start < data.len() {
        let end = (start + batch).min(data.len());
        let pixels: Vec<&[f32]> = (start..end).map(|i| data.get(i).0.pixels()).collect();
        let mut rngs: Vec<StdRng> = (start..end).map(|i| sample_rng(seed, i as u64)).collect();
        got.extend(params.run_batch(&mut state, &pixels, &mut rngs).unwrap());
        start = end;
    }
    got
}

#[test]
fn issue_kernel_matrix_is_bit_identical_to_scalar_reference() {
    let (params, data) = fixture();
    let reference = scalar_counts(params, data, 31);
    // Auto and Avx2 resolve to whatever the host supports (Avx2 falls
    // back to scalar off-AVX2 hosts, so the matrix is portable); tile
    // widths pin the same boundary shapes as `tile_invariance.rs`.
    for choice in [KernelChoice::Scalar, KernelChoice::Auto, KernelChoice::Avx2] {
        for tile in [1usize, 5, 9, 23, usize::MAX] {
            for batch in [2usize, 5, 13] {
                assert_eq!(
                    batched_counts(params, data, 31, choice, batch, tile),
                    reference,
                    "kernel={} tile={tile} batch={batch}",
                    choice.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any (len, phase) point: bitwise agreement of every kernel entry
    /// point, covering all tail alignments and nasty-word rotations the
    /// deterministic sweep does not enumerate.
    #[test]
    fn arbitrary_lane_counts_agree_bitwise(
        len in 0usize..64,
        phase in 0usize..256,
    ) {
        check_kernels_agree(len, phase);
    }

    /// Any (kernel, batch, thread, tile, intra, seed) point — driven
    /// through the full `BatchEvaluator` sharding stack — matches the
    /// pinned-scalar serial path on labels, tiers and spike counts.
    #[test]
    fn arbitrary_kernel_points_match_scalar(
        kernel_idx in 0usize..3,
        batch in 1usize..12,
        threads in 1usize..5,
        tile in 1usize..40,
        intra_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let choice = [KernelChoice::Scalar, KernelChoice::Auto, KernelChoice::Avx2][kernel_idx];
        let intra = [
            IntraChoice::Off,
            IntraChoice::Auto,
            IntraChoice::Workers(2),
            IntraChoice::Workers(3),
        ][intra_idx];
        let (params, data) = fixture();
        let scalar = BatchEvaluator::with_threads(1)
            .with_batch(1)
            .with_kernel(KernelChoice::Scalar);
        let simd = BatchEvaluator::with_threads(threads)
            .with_batch(batch)
            .with_tile(tile)
            .with_kernel(choice)
            .with_intra(intra);
        prop_assert_eq!(
            simd.spike_counts(params, data, seed),
            scalar.spike_counts(params, data, seed)
        );
        let scalar_labels = scalar.label_neurons(params, data, seed);
        let simd_labels = simd.label_neurons(params, data, seed);
        prop_assert_eq!(simd_labels.assignments(), scalar_labels.assignments());
        prop_assert_eq!(
            simd.evaluate(params, data, &scalar_labels, seed),
            scalar.evaluate(params, data, &scalar_labels, seed)
        );
    }
}
