//! End-to-end properties of the packed quantised DRAM weight image:
//! quantise → inject at the native word width → scrub-on-plane-build must
//! be **bit-identical** to dequantising the corrupted image into a plain
//! [`StoredWeights`] and building the plane from that — the packed read
//! path is an encoding, never a semantic fork.

use proptest::prelude::*;
use sparkxd::error::{ErrorModel, Injector};
use sparkxd::snn::{EffectivePlane, QuantizedImage, StoredWeights, WeightPrecision};

/// Weight words a trained store can plausibly hold, plus the corrupt
/// species the scrub exists for.
fn weight_word(i: usize, w_max: f32) -> f32 {
    match i % 11 {
        0 => 0.0,
        1 => w_max,
        2 => w_max * 0.5,
        3 => -1.0,
        4 => f32::NAN,
        5 => f32::INFINITY,
        6 => f32::NEG_INFINITY,
        7 => w_max * 2.0,
        8 => 1.5e-41, // denormal
        9 => w_max * 0.125,
        _ => w_max * 0.99,
    }
}

fn store(inputs: usize, neurons: usize, w_max: f32, phase: usize) -> StoredWeights {
    let w = (0..inputs * neurons)
        .map(|i| weight_word(i + phase, w_max))
        .collect();
    StoredWeights::from_weights(inputs, neurons, w_max, w)
}

fn assert_planes_bitwise_equal(got: &EffectivePlane, want: &EffectivePlane) {
    assert_eq!(got.inputs(), want.inputs());
    assert_eq!(got.neurons(), want.neurons());
    for input in 0..got.inputs() {
        assert_eq!(
            got.row_live(input),
            want.row_live(input),
            "row {input} liveness"
        );
        for (j, (g, w)) in got.row(input).iter().zip(want.row(input)).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "plane ({input}, {j}) diverged: {g:?} vs {w:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole oracle: for any image shape, width, BER, error model
    /// and clamp setting, corrupting the packed payload and building the
    /// plane directly from the codes equals dequantise-then-build.
    #[test]
    fn corrupted_packed_plane_matches_dequantize_then_build_oracle(
        inputs in 1usize..9,
        neurons in 1usize..9,
        phase in 0usize..11,
        w_max_idx in 0usize..3,
        precision_is_8 in any::<bool>(),
        model_idx in 0usize..4,
        ber_idx in 0usize..4,
        seed in 0u64..1000,
        clamp in any::<bool>(),
    ) {
        let w_max = [1.0f32, 0.35, 8.0][w_max_idx];
        let ber = [0.0f64, 1e-3, 0.05, 0.5][ber_idx];
        let precision = if precision_is_8 {
            WeightPrecision::Int8
        } else {
            WeightPrecision::Int16
        };
        let model = [
            ErrorModel::Model0,
            ErrorModel::Model1 { weak_fraction: 0.25 },
            ErrorModel::Model2 { weak_fraction: 0.25 },
            ErrorModel::Model3 { one_bias: 0.8 },
        ][model_idx];
        let weights = store(inputs, neurons, w_max, phase);
        let mut image = QuantizedImage::quantize(&weights, precision);
        let word_bits = image.word_bits();
        let mut injector = Injector::new(model, seed);
        injector.inject_uniform_packed(image.payload_mut(), word_bits, ber);

        let direct = image.build_plane(clamp);
        let oracle = EffectivePlane::build(&image.dequantize(), clamp);
        assert_planes_bitwise_equal(&direct, &oracle);

        // Whatever the flips did, every scrubbed read stays in the valid
        // weight range: packed codes are unsigned, so dequantised words
        // are finite and non-negative, and the clamp bounds them by w_max.
        for input in 0..direct.inputs() {
            for &v in direct.row(input) {
                prop_assert!(v.is_finite() && v >= 0.0);
                if clamp {
                    prop_assert!(v <= w_max);
                }
            }
        }
    }

    /// The packed payload's byte length always equals the reported DRAM
    /// footprint, and injection never changes either.
    #[test]
    fn injection_preserves_image_geometry(
        inputs in 1usize..12,
        neurons in 1usize..12,
        precision_is_8 in any::<bool>(),
        ber_idx in 0usize..2,
        seed in 0u64..500,
    ) {
        let ber = [1e-2f64, 0.3][ber_idx];
        let precision = if precision_is_8 {
            WeightPrecision::Int8
        } else {
            WeightPrecision::Int16
        };
        let weights = store(inputs, neurons, 1.0, 0);
        let mut image = QuantizedImage::quantize(&weights, precision);
        let expected_bytes = inputs * neurons * precision.bytes_per_word();
        prop_assert_eq!(image.dram_bytes(), expected_bytes);
        prop_assert_eq!(image.payload().len(), expected_bytes);
        let word_bits = image.word_bits();
        let mut injector = Injector::new(ErrorModel::Model0, seed);
        injector.inject_uniform_packed(image.payload_mut(), word_bits, ber);
        prop_assert_eq!(image.dram_bytes(), expected_bytes);
        prop_assert_eq!(image.words(), inputs * neurons);
    }
}

/// A zero-BER round trip through the packed image is exactly the
/// quantisation round trip: no injector involvement, no drift.
#[test]
fn zero_ber_image_is_the_clean_roundtrip() {
    for precision in [WeightPrecision::Int8, WeightPrecision::Int16] {
        let weights = store(7, 5, 1.0, 3);
        let mut image = QuantizedImage::quantize(&weights, precision);
        let word_bits = image.word_bits();
        Injector::new(ErrorModel::Model0, 9).inject_uniform_packed(
            image.payload_mut(),
            word_bits,
            0.0,
        );
        assert_eq!(
            image.dequantize().as_slice(),
            QuantizedImage::roundtrip(&weights, precision).as_slice()
        );
    }
}
