//! Serving demo: a 3-tier online inference service answering a burst of
//! requests under mixed routing policies.
//!
//! ```sh
//! cargo run --release --example serving_demo
//! ```
//!
//! Builds three corrupted-and-scrubbed model instances at 1.025 V, 1.1 V
//! and 1.175 V (one fault-aware training pass shared across tiers), starts
//! the dynamic-batching service, and submits a burst where each request
//! states what it cares about — an accuracy floor, a DRAM energy budget or
//! a deadline slack. The report shows which tier each policy landed on and
//! what the burst cost per tier.

use sparkxd::core::pipeline::PipelineConfig;
use sparkxd::core::TierBuilder;
use sparkxd::data::{SynthDigits, SyntheticSource};
use sparkxd::serve::{RoutePolicy, ServeRequest, ServiceConfig, SparkXdService};
use std::time::Duration;

fn main() {
    // One fault-aware model, three deployable operating points.
    let config = PipelineConfig {
        neurons: 40,
        timesteps: 40,
        train_samples: 120,
        test_samples: 60,
        baseline_epochs: 2,
        ..PipelineConfig::small_demo(42)
    };
    println!("building the 3-tier ladder (baseline + Algorithm 1, then one mapping per Vdd)...");
    let tiers = TierBuilder::new(config).build().expect("tier ladder");
    println!("BER_th {:.0e}; tiers:", tiers.ber_th);
    for (i, tier) in tiers.tiers.iter().enumerate() {
        println!(
            "  tier {i}: {:.3} V  BER {:.1e}  accuracy {:>5.1}%  {:.4} mJ/pass  {:.1} us/pass",
            tier.v_supply.0,
            tier.operating_ber,
            tier.accuracy_estimate * 100.0,
            tier.dram_pass_mj,
            tier.dram_pass_ns / 1e3,
        );
    }
    let energy_mid = (tiers.tiers[0].dram_pass_mj + tiers.tiers[1].dram_pass_mj) / 2.0;
    let modest_floor = tiers.tiers[0].accuracy_estimate;

    let (service, responses) = SparkXdService::start(
        tiers.tiers.clone(),
        ServiceConfig::from_env()
            .with_batch(4)
            .with_max_wait(Duration::from_millis(1)),
    );

    // A burst of 30 requests cycling through three policy shapes.
    let data = SynthDigits.generate(30, 7);
    println!("\nsubmitting a burst of {} requests...", data.len());
    for (i, (image, _)) in data.iter().enumerate() {
        let policy = match i % 3 {
            0 => RoutePolicy::AccuracyFloor(modest_floor), // cheapest sufficient tier
            1 => RoutePolicy::EnergyBudget(energy_mid),    // best accuracy within budget
            _ => RoutePolicy::DeadlineSlack(f64::MAX),     // latency is no object
        };
        service
            .submit(ServeRequest {
                id: i as u64,
                pixels: image.pixels().to_vec(),
                policy,
            })
            .expect("burst fits the default queue bound");
    }
    let snapshot = service.shutdown();

    let mut answers: Vec<_> = responses.iter().collect();
    answers.sort_unstable_by_key(|r| r.id);
    println!("\n id  policy          tier  Vdd      label  chunk  energy share");
    for r in &answers {
        let policy = match r.id % 3 {
            0 => "accuracy-floor",
            1 => "energy-budget",
            _ => "deadline-slack",
        };
        println!(
            " {:>2}  {policy:<14}  {}     {:.3} V  {:<5}  {:>5}  {:.5} mJ",
            r.id,
            r.tier,
            r.v_supply.0,
            r.label.map_or("-".into(), |l| l.to_string()),
            r.chunk_len,
            r.dram_share_mj,
        );
    }

    println!("\n-- burst report ----------------------------------------");
    for (i, counters) in snapshot.per_tier.iter().enumerate() {
        println!(
            "tier {i} ({:.3} V): {} hits in {} batches, {:.4} mJ DRAM",
            tiers.tiers[i].v_supply.0, counters.hits, counters.batches, snapshot.tier_energy_mj[i],
        );
    }
    println!(
        "p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms;  {:.4} mJ DRAM per request",
        snapshot.p50_ns as f64 / 1e6,
        snapshot.p95_ns as f64 / 1e6,
        snapshot.p99_ns as f64 / 1e6,
        snapshot.energy_per_request_mj(),
    );
}
