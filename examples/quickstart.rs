//! Quickstart: run the complete SparkXD pipeline on a small network.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Trains a baseline SNN on the synthetic digits dataset, improves its
//! error tolerance with fault-aware training (Algorithm 1), finds the
//! maximum tolerable BER, maps the weights into safe DRAM subarrays
//! (Algorithm 2) and reports the DRAM energy saving and throughput against
//! the accurate-DRAM baseline.

use sparkxd::core::pipeline::{PipelineConfig, SparkXdPipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PipelineConfig::small_demo(42);
    println!(
        "SparkXD quickstart: {} neurons on {}, requesting {}",
        config.neurons,
        config.dataset.label(),
        config.v_supply
    );

    let outcome = SparkXdPipeline::new(config).run()?;

    println!("\n-- accuracy --------------------------------------------");
    println!(
        "baseline (accurate DRAM):      {:.1}%",
        outcome.baseline_accuracy * 100.0
    );
    println!(
        "improved, error-free:          {:.1}%",
        outcome.improved_clean_accuracy * 100.0
    );
    println!(
        "improved @ operating point:    {:.1}%",
        outcome.accuracy_at_operating_point * 100.0
    );
    println!("\n-- error tolerance -------------------------------------");
    for (ber, acc) in &outcome.tolerance_curve {
        println!("  BER {ber:>7.0e}  ->  {:.1}%", acc * 100.0);
    }
    println!(
        "maximum tolerable BER (BER_th): {:.0e} (target met: {})",
        outcome.max_tolerable_ber, outcome.target_met
    );
    println!("\n-- DRAM ------------------------------------------------");
    println!(
        "operating point: {} (device BER {:.1e})",
        outcome.operating_voltage, outcome.operating_ber
    );
    println!(
        "mapping: {} over {} columns in {} safe subarrays ({:.0}% of device safe)",
        outcome.mapping.policy,
        outcome.mapping.columns,
        outcome.mapping.subarrays_used,
        outcome.mapping.safe_fraction * 100.0
    );
    println!(
        "DRAM energy: {:.4} mJ -> {:.4} mJ ({:.1}% saving), speed-up {:.3}x",
        outcome.energy.baseline.total_mj(),
        outcome.energy.improved.total_mj(),
        outcome.energy.saving_fraction_vs_baseline() * 100.0,
        outcome.energy.speedup()
    );
    Ok(())
}
