//! Composing SparkXD with weight pruning (the paper's Fig. 2a argument):
//! pruning cuts the number of DRAM accesses, approximate DRAM cuts the
//! energy per access — the savings multiply.
//!
//! ```sh
//! cargo run --release --example pruning_composition
//! ```

use sparkxd::circuit::Volt;
use sparkxd::core::energy_eval::EnergyEvaluation;
use sparkxd::core::mapping::{BaselineMapping, MappingPolicy, SparkXdMapping};
use sparkxd::core::trace_gen::columns_for_words;
use sparkxd::data::{SynthDigits, SyntheticSource};
use sparkxd::dram::DramConfig;
use sparkxd::error::{BerCurve, ErrorProfile, WeakCellMap};
use sparkxd::snn::{prune_to_connectivity, DiehlCookNetwork, SnnConfig, WeightPrecision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = SynthDigits.generate(300, 1);
    let test = SynthDigits.generate(100, 2);
    let mut net = DiehlCookNetwork::new(SnnConfig::for_neurons(60).with_timesteps(50));
    for epoch in 0..4 {
        net.train_epoch(&train, 100 + epoch);
    }
    let labeler = net.label_neurons(&train, 7);
    println!(
        "dense accuracy: {:.1}%",
        net.evaluate(&test, &labeler, 8) * 100.0
    );

    let accurate = DramConfig::lpddr3_1600_4gb();
    let approx = DramConfig::approximate(Volt(1.025))?;
    let ber = BerCurve::paper_default().ber_at(Volt(1.025));
    let profile = WeakCellMap::generate(&accurate.geometry, 42).profile(ber);
    let flat = ErrorProfile::uniform(0.0, accurate.geometry.total_subarrays());

    println!("\nconnectivity  accuracy  acc-DRAM [uJ]  approx-DRAM [uJ]  combined saving");
    let total_weights = net.weights().len();
    let dense_energy = {
        let cols = columns_for_words(
            total_weights,
            accurate.geometry.col_bytes,
            WeightPrecision::Fp32,
        );
        let m = BaselineMapping.map(cols, &accurate.geometry, &flat, f64::MAX)?;
        EnergyEvaluation::evaluate(&accurate, &m).total_mj() * 1e3
    };
    for connectivity in [1.0, 0.8, 0.6, 0.5] {
        net.with_weights_mut(|w| prune_to_connectivity(w, connectivity));
        let accuracy = net.evaluate(&test, &labeler, 8);
        let stored = (total_weights as f64 * connectivity).round() as usize;
        let cols = columns_for_words(stored, accurate.geometry.col_bytes, WeightPrecision::Fp32);
        let acc_map = BaselineMapping.map(cols, &accurate.geometry, &flat, f64::MAX)?;
        let app_map = SparkXdMapping.map(cols, &approx.geometry, &profile, ber)?;
        let e_acc = EnergyEvaluation::evaluate(&accurate, &acc_map).total_mj() * 1e3;
        let e_app = EnergyEvaluation::evaluate(&approx, &app_map).total_mj() * 1e3;
        println!(
            "  {:>4.0}%        {:>5.1}%    {e_acc:>9.2}      {e_app:>9.2}        {:>5.1}%",
            connectivity * 100.0,
            accuracy * 100.0,
            (1.0 - e_app / dense_energy) * 100.0
        );
    }
    println!("\n(accuracy degrades gracefully while the combined energy saving compounds)");
    Ok(())
}
