//! DRAM subsystem walkthrough: array-voltage waveforms, voltage-scaled
//! timings, row-buffer behaviour and per-access energy — the substrate
//! experiments behind the paper's Figs. 2 and 6.
//!
//! ```sh
//! cargo run --release --example dram_explorer
//! ```

use sparkxd::circuit::{BitlineModel, Volt};
use sparkxd::dram::{AccessTrace, DramConfig, DramModel};
use sparkxd::energy::EnergyModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Array voltage dynamics at nominal vs reduced supply.
    let model = BitlineModel::lpddr3();
    println!("V_array during ACT(0ns) .. PRE(45ns), sampled every 10 ns:");
    let hi = model.activate_precharge_waveform(Volt(1.35));
    let lo = model.activate_precharge_waveform(Volt(1.025));
    println!("  t[ns]   1.350V   1.025V");
    for k in 0..=8 {
        let t = k as f64 * 10.0;
        println!(
            "  {:>5}   {:.3}    {:.3}",
            t,
            hi.value_at(t * 1e-9),
            lo.value_at(t * 1e-9)
        );
    }

    // Timing derivation (ready-to-access / precharge / activate).
    println!("\nvoltage-scaled core timings:");
    for v in [1.35, 1.175, 1.025] {
        let t = model.derive_timing(Volt(v))?;
        println!("  {t}");
    }

    // Row-buffer behaviour and bank-level overlap.
    let config = DramConfig::lpddr3_1600_4gb();
    let sequential = AccessTrace::sequential_reads(&config.geometry, 2048);
    let interleaved = AccessTrace::interleaved_reads(&config.geometry, 2048);
    let seq = DramModel::new(config.clone()).replay(&sequential);
    let inter = DramModel::new(config.clone()).replay(&interleaved);
    println!("\nrow-buffer statistics over 2048 reads:");
    println!("  sequential layout:  {}", seq.stats);
    println!("  interleaved layout: {}", inter.stats);
    println!(
        "  bank-overlap factor: sequential {:.2}x, interleaved {:.2}x",
        seq.latency.overlap_factor(),
        inter.latency.overlap_factor()
    );

    // Per-access energy across voltages.
    println!("\nper-access energy (hit/miss/conflict):");
    for v in [1.35, 1.175, 1.025] {
        let cfg = if v == 1.35 {
            DramConfig::lpddr3_1600_4gb()
        } else {
            DramConfig::approximate(Volt(v))?
        };
        println!("  {}", EnergyModel::for_config(&cfg).access_energy());
    }
    Ok(())
}
