//! Edge-AI deployment scenario (the paper's motivating use case):
//! an energy-constrained embedded device must run SNN inference within an
//! accuracy budget. This example sweeps the approximate-DRAM operating
//! voltages and picks the lowest-energy point whose device BER the
//! fault-aware-trained model tolerates.
//!
//! ```sh
//! cargo run --release --example edge_deployment
//! ```

use sparkxd::circuit::Volt;
use sparkxd::core::energy_eval::EnergyEvaluation;
use sparkxd::core::mapping::{BaselineMapping, MappingPolicy, SparkXdMapping};
use sparkxd::core::tolerance::analyze_tolerance;
use sparkxd::core::trace_gen::columns_for_network;
use sparkxd::core::training::{FaultAwareTrainer, TrainingConfig};
use sparkxd::data::{SynthDigits, SyntheticSource};
use sparkxd::dram::DramConfig;
use sparkxd::error::{BerCurve, ErrorModel, ErrorProfile, WeakCellMap};
use sparkxd::snn::{DiehlCookNetwork, SnnConfig, WeightPrecision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the edge model (small for the demo) and harden it.
    let train = SynthDigits.generate(300, 1);
    let test = SynthDigits.generate(100, 2);
    let snn_config = SnnConfig::for_neurons(60).with_timesteps(50);
    let mut net = DiehlCookNetwork::new(snn_config.clone());
    for epoch in 0..4 {
        net.train_epoch(&train, 100 + epoch);
    }
    let trainer = FaultAwareTrainer::new(TrainingConfig::paper_default());
    let outcome = trainer.improve(&mut net, &train, &test)?;
    println!(
        "hardened model: baseline {:.1}%, improved (clean) {:.1}%",
        outcome.baseline_accuracy * 100.0,
        outcome.improved_clean_accuracy * 100.0
    );

    // 2. Measure its tolerance curve once.
    let curve = analyze_tolerance(
        &mut net,
        &outcome.labeler,
        &test,
        &[1e-9, 1e-7, 1e-5, 1e-4, 1e-3],
        ErrorModel::Model0,
        2,
        7,
    );
    let target = outcome.baseline_accuracy - 0.01;
    let ber_th = curve.max_tolerable_ber(target).unwrap_or(1e-9);
    println!(
        "accuracy target {:.1}% -> BER_th {ber_th:.0e}",
        target * 100.0
    );

    // 3. Sweep operating voltages: energy per inference where deployable.
    let ber_curve = BerCurve::paper_default();
    let baseline_config = DramConfig::lpddr3_1600_4gb();
    let n_columns = columns_for_network(
        &snn_config,
        baseline_config.geometry.col_bytes,
        WeightPrecision::Fp32,
    );
    let flat = ErrorProfile::uniform(0.0, baseline_config.geometry.total_subarrays());
    let baseline_map =
        BaselineMapping.map(n_columns, &baseline_config.geometry, &flat, f64::MAX)?;
    let baseline = EnergyEvaluation::evaluate(&baseline_config, &baseline_map);
    println!(
        "\nbaseline @1.350V: {:.4} mJ per inference",
        baseline.total_mj()
    );

    let weak_cells = WeakCellMap::generate(&baseline_config.geometry, 42);
    let mut best: Option<(f64, f64)> = None;
    for v in [1.325, 1.25, 1.175, 1.1, 1.025] {
        let device_ber = ber_curve.ber_at(Volt(v));
        let config = DramConfig::approximate(Volt(v))?;
        let profile = weak_cells.profile(device_ber);
        match SparkXdMapping.map(n_columns, &config.geometry, &profile, ber_th) {
            Ok(mapping) if device_ber <= ber_th => {
                let eval = EnergyEvaluation::evaluate(&config, &mapping);
                let saving = 1.0 - eval.total_mj() / baseline.total_mj();
                println!(
                    "  {v:.3}V  BER {device_ber:.1e}  {:.4} mJ  (saving {:.1}%)  deployable",
                    eval.total_mj(),
                    saving * 100.0
                );
                best = Some((v, saving));
            }
            _ => println!("  {v:.3}V  BER {device_ber:.1e}  -- exceeds model tolerance, skipped"),
        }
    }
    match best {
        Some((v, saving)) => println!(
            "\nchosen operating point: {v:.3} V ({:.1}% DRAM energy saving)",
            saving * 100.0
        ),
        None => println!("\nno reduced-voltage point met the accuracy constraint"),
    }
    Ok(())
}
