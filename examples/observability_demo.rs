//! Observability demo: the complete pipeline with span telemetry on, a
//! summary table of everything recorded, and a Chrome trace on disk.
//!
//! ```sh
//! cargo run --release --example observability_demo
//! ```
//!
//! Telemetry is observation-only — the run below is bit-identical to the
//! same run with telemetry off (`tests/thread_invariance.rs` proves it) —
//! so turning it on is always safe. Open the resulting `trace.json` in
//! `chrome://tracing` or <https://ui.perfetto.dev> to see the seven
//! pipeline stages with the worker-pool dispatches and DRAM trace
//! replays nested beneath them.

use sparkxd::core::pipeline::{PipelineConfig, SparkXdPipeline};
use sparkxd::telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spans mode: counters, histograms and the trace-event buffer all
    // live. Out-of-process the knob is `SPARKXD_TELEMETRY=spans`; an
    // embedding program can pin it in code, as here.
    telemetry::set_mode(telemetry::Mode::Spans);
    // RAII writer: `trace.json` lands when this drops at the end of
    // main — early returns and panics included.
    let _trace = telemetry::TraceFile::new("trace.json");

    let config = PipelineConfig::small_demo(42);
    println!(
        "observability demo: {} neurons on {}, telemetry spans mode",
        config.neurons,
        config.dataset.label()
    );
    let outcome = SparkXdPipeline::new(config).run()?;
    println!(
        "accuracy @ operating point: {:.1}%, DRAM energy saving {:.1}%\n",
        outcome.accuracy_at_operating_point * 100.0,
        outcome.energy.saving_fraction_vs_baseline() * 100.0
    );

    match sparkxd_bench::telemetry_summary() {
        Some(summary) => println!("{summary}"),
        None => println!("no telemetry recorded"),
    }
    println!("open trace.json in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
