//! Fault-injection study: how the four EDEN error models corrupt a trained
//! SNN, and why the bounded-synapse read clamp matters (the paper's
//! observation that MSB flips are the damaging ones).
//!
//! ```sh
//! cargo run --release --example fault_injection_study
//! ```

use sparkxd::core::mapping::{BaselineMapping, MappingPolicy};
use sparkxd::core::trace_gen::columns_for_network;
use sparkxd::data::{SynthDigits, SyntheticSource};
use sparkxd::dram::DramConfig;
use sparkxd::error::{ErrorModel, ErrorProfile, Injector};
use sparkxd::snn::{DiehlCookNetwork, SnnConfig, WeightPrecision};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = SynthDigits.generate(300, 1);
    let test = SynthDigits.generate(100, 2);
    let snn_config = SnnConfig::for_neurons(60).with_timesteps(50);
    let mut net = DiehlCookNetwork::new(snn_config.clone());
    for epoch in 0..4 {
        net.train_epoch(&train, 100 + epoch);
    }
    let labeler = net.label_neurons(&train, 7);
    let clean_accuracy = net.evaluate(&test, &labeler, 8);
    let clean = net.weights().clone();
    println!("clean accuracy: {:.1}%", clean_accuracy * 100.0);

    // Placement of the weight image under the baseline mapping.
    let geometry = DramConfig::lpddr3_1600_4gb().geometry;
    let n_columns = columns_for_network(&snn_config, geometry.col_bytes, WeightPrecision::Fp32);
    let profile = ErrorProfile::uniform(1e-3, geometry.total_subarrays());
    let mapping = BaselineMapping.map(n_columns, &geometry, &profile, f64::MAX)?;
    let placements = mapping.placements(clean.len());

    println!("\naccuracy at BER 1e-3 under each error model (3 trials each):");
    for model in [
        ErrorModel::Model0,
        ErrorModel::model1_default(),
        ErrorModel::model2_default(),
        ErrorModel::model3_default(),
    ] {
        let mut total = 0.0;
        let mut flips = 0;
        for trial in 0..3u64 {
            let mut injector = Injector::new(model, 40 + trial);
            let mut corrupted = clean.clone();
            let report =
                injector.inject_with_placements(corrupted.as_mut_slice(), &placements, &profile)?;
            flips += report.flips;
            net.set_weights(corrupted);
            total += net.evaluate(&test, &labeler, 9 + trial);
        }
        println!(
            "  {:<28} {:.1}%   (~{} flips/trial)",
            model.to_string(),
            total / 3.0 * 100.0,
            flips / 3
        );
    }

    // Ablation: disable the bounded-synapse clamp so raw corrupted FP32
    // values reach the membrane (a single exponent-MSB flip can then make
    // one synapse astronomically strong).
    let mut raw_cfg = snn_config;
    raw_cfg.clamp_reads = false;
    let mut raw_net = DiehlCookNetwork::new(raw_cfg);
    raw_net.set_weights(clean.clone());
    let mut injector = Injector::new(ErrorModel::Model0, 99);
    let mut corrupted = clean.clone();
    injector.inject_uniform(corrupted.as_mut_slice(), 1e-3);
    raw_net.set_weights(corrupted.clone());
    let unclamped = raw_net.evaluate(&test, &labeler, 10);
    net.set_weights(corrupted);
    let clamped = net.evaluate(&test, &labeler, 10);
    println!("\nMSB sensitivity at BER 1e-3 (same error pattern):");
    println!("  clamped synapse reads:   {:.1}%", clamped * 100.0);
    println!("  unclamped (raw FP32):    {:.1}%", unclamped * 100.0);
    net.set_weights(clean);
    Ok(())
}
